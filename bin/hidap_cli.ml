(* hidap — command-line front end.

   Subcommands:
     stats  FILE.hnl           netlist statistics and abstraction sizes
     place  FILE.hnl           run the HiDaP flow, print macro placements
     eval   (FILE.hnl | -c N)  compare IndEDA / HiDaP / handFP
     check  (FILE.hnl | -c N)  validate a design (optionally audit its placement)
     gen    -c NAME -o FILE    emit a synthetic suite circuit as HNL
     view   FILE.hnl           evaluate and render a saved placement
     report LEDGER|DIR         self-contained HTML report from QoR ledgers
     explain RUN.json          attribute a run's cost to terms/blocks/pairs
     diff   A.json B.json      compare two runs term by term, macro by macro
     bench                     run suite circuits, gate against baselines
     ckpt   ls|inspect|gc DIR  inspect and maintain checkpoint directories *)

open Cmdliner

(* Distinct exit codes so CI and scripts can tell a bad invocation from
   a bad input, a degraded-but-emitted result, and an illegal
   placement. Listed under EXIT STATUS in --help. *)
let exit_usage = 2
let exit_invalid = 3
let exit_budget = 4
let exit_audit = 5
let exit_interrupted = 6
let exit_daemon = 7

let exits =
  Cmd.Exit.info exit_usage
    ~doc:"on usage errors caught by hidap itself: conflicting or missing inputs, \
          an unknown suite circuit, malformed $(b,HIDAP_FAULT) / $(b,HIDAP_BUDGET) \
          / $(b,--budget) syntax, or an unwritable output path."
  :: Cmd.Exit.info exit_invalid
       ~doc:"when the input design fails to parse or validate; diagnostics are \
             printed to stderr as $(i,file:line:col: message)."
  :: Cmd.Exit.info exit_budget
       ~doc:"when a stage wall-clock budget expired and the flow degraded to a \
             stage fallback; the (degraded) result is still emitted."
  :: Cmd.Exit.info exit_audit
       ~doc:"when the placement legality audit fails (overlaps, out-of-die or \
             footprint-inconsistent macros)."
  :: Cmd.Exit.info exit_interrupted
       ~doc:"when SIGINT/SIGTERM interrupted a $(b,place) run that had \
             $(b,--checkpoint-dir): a final snapshot was written first, so \
             re-running with $(b,--resume) continues bit-identically. Also \
             used by $(b,submit) for a job parked by a daemon drain."
  :: Cmd.Exit.info exit_daemon
       ~doc:"when the daemon conversation broke: $(b,submit)/$(b,jobs) could \
             not connect, or the daemon died mid-conversation (connection \
             refused or EOF). Also used by $(b,serve) when a live daemon \
             already answers on the socket path."
  :: Cmd.Exit.defaults

(* Raised (and caught around the telemetry bracket) when a signal
   cancelled a checkpointed run: unwinds so --trace/--metrics are
   still written, then exits with [exit_interrupted]. *)
exception Interrupted

let die_usage fmt =
  Format.kasprintf
    (fun s ->
      Format.eprintf "hidap: %s@." s;
      exit exit_usage)
    fmt

(* Validator diagnostics carry no file position; prefix the file so the
   report stays greppable alongside parser diagnostics. *)
let print_diag ?path d =
  match path with
  | Some p when d.Guard.Diag.loc = None ->
    Format.eprintf "%s: %a@." p Guard.Diag.pp d
  | _ -> Format.eprintf "%a@." Guard.Diag.pp d

let load_design path =
  match Hnl.Parser.parse_file path with
  | Ok d -> d
  | Error { Hnl.Parser.line; col; message } ->
    Format.eprintf "%s:%d:%d: error: %s@." path line col message;
    exit exit_invalid

(* Validate (and possibly repair) a parsed design, reporting every
   diagnostic to stderr. *)
let validate_design ~strict ?path design =
  match Guard.Validate.design ~strict design with
  | Ok r ->
    List.iter (print_diag ?path) r.Guard.Validate.diags;
    Ok r.Guard.Validate.design
  | Error diags ->
    List.iter (print_diag ?path) diags;
    Error (List.length (Guard.Validate.errors diags))

let design_of ~strict ~file ~circuit =
  let path, name, design =
    match (file, circuit) with
    | Some path, None ->
      (Some path, Filename.remove_extension (Filename.basename path), load_design path)
    | None, Some name ->
      (match Circuitgen.Suite.find name with
      | Some c -> (None, name, Circuitgen.Gen.generate c.Circuitgen.Suite.params)
      | None -> die_usage "unknown suite circuit %s (c1..c8)" name)
    | Some _, Some _ | None, None -> die_usage "give exactly one of FILE.hnl or --circuit"
  in
  match validate_design ~strict ?path design with
  | Ok design -> (name, design)
  | Error n ->
    Format.eprintf "hidap: invalid design: %d error%s@." n (if n = 1 then "" else "s");
    exit exit_invalid

(* The validator repairs or rejects everything [Flat.elaborate] checks,
   so this is a backstop, not the primary gate. *)
let elaborate_checked design =
  try Netlist.Flat.elaborate design
  with Invalid_argument msg ->
    Format.eprintf "hidap: elaboration rejected the design: %s@." msg;
    exit exit_invalid

(* Fault specs come from HIDAP_FAULT; budgets merge HIDAP_BUDGET with
   the --budget flag (flag entries win for a stage listed in both). *)
let supervision ~budget =
  let faults =
    match Guard.Fault.of_env () with Ok s -> s | Error msg -> die_usage "%s" msg
  in
  let env_budgets =
    match Guard.Budget.of_env () with Ok b -> b | Error msg -> die_usage "%s" msg
  in
  let flag_budgets =
    match budget with
    | None -> []
    | Some s ->
      (match Guard.Budget.parse s with Ok b -> b | Error msg -> die_usage "%s" msg)
  in
  (faults, env_budgets @ flag_budgets)

(* ---- common args -------------------------------------------------- *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.hnl" ~doc:"HNL netlist file.")

let circuit_arg =
  Arg.(value & opt (some string) None & info [ "c"; "circuit" ] ~docv:"NAME"
         ~doc:"Synthetic suite circuit (c1..c8).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed for the flow.")

let lambda_arg =
  Arg.(value & opt (some float) None & info [ "lambda" ]
         ~doc:"Fix the block/macro dataflow blend instead of sweeping 0.2/0.5/0.8.")

let svg_arg =
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"OUT.svg"
         ~doc:"Write the floorplan as SVG.")

let jobs_arg =
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for the annealing starts and the lambda sweep \
               (0 = one per recommended core). The placement is bit-identical \
               for every value.")

let strict_arg =
  Arg.(value & flag & info [ "strict" ]
         ~doc:"Escalate validator warnings to errors: a design that parses but \
               needed repair (dangling bindings, duplicate names, clamped \
               areas, macros larger than the die) is rejected instead of \
               silently fixed.")

let budget_arg =
  Arg.(value & opt (some string) None & info [ "budget" ] ~docv:"STAGE=SECONDS,..."
         ~doc:"Per-stage wall-clock budgets (stages: floorplan, flipping, \
               cellplace). A stage past its budget degrades to its fallback \
               and the run exits with the budget-exceeded status. Merged with \
               $(b,HIDAP_BUDGET).")

let resolve_jobs jobs = if jobs <= 0 then Parexec.default_jobs () else jobs

let config_of ~seed ~lambda ~jobs =
  let config =
    { Hidap.Config.default with Hidap.Config.seed; jobs = resolve_jobs jobs }
  in
  match lambda with
  | Some l -> Hidap.Config.with_lambda config l
  | None -> config

(* ---- observability ------------------------------------------------ *)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"OUT.json"
         ~doc:"Write a Chrome-trace JSON of the run (open in chrome://tracing or \
               https://ui.perfetto.dev).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"OUT.json"
         ~doc:"Write flow metrics (counters, gauges, histograms, series) as JSON.")

let profile_arg =
  Arg.(value & flag & info [ "profile" ]
         ~doc:"Print the stage-tree timing summary to stderr.")

let qor_arg =
  Arg.(value & opt (some string) None & info [ "qor" ] ~docv:"OUT.json"
         ~doc:"Write a QoR ledger record of the run (render with 'hidap report').")

let profile_out_arg =
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"OUT.folded"
         ~doc:"Sample the run with the wall-clock profiler and write a \
               collapsed-stack profile (flamegraph.pl / speedscope / inferno \
               input). Implies span recording; the trace itself is only \
               written when $(b,--trace) is also given.")

let perf_out_arg =
  Arg.(value & opt (some string) None & info [ "perf-out" ] ~docv:"OUT.json"
         ~doc:"Write the hot-path perf counters (SA moves/accepts/rejects/\
               reheats, cost evaluations), pool utilization and throughput as \
               JSON. The merged counters are bit-identical for every --jobs \
               value.")

let progress_file_arg =
  Arg.(value & opt (some string) None & info [ "progress-file" ] ~docv:"OUT.ndjson"
         ~doc:"Stream live progress events (NDJSON, schema hidap-progress v2: \
               heartbeat, stage start/end, per-instance SA progress with \
               cost-term breakdowns, checkpoints, degradations) to a file. \
               See DESIGN.md section 12.")

let progress_fd_arg =
  Arg.(value & opt (some int) None & info [ "progress-fd" ] ~docv:"N"
         ~doc:"Stream the same progress events to an already-open file \
               descriptor (for wrappers: $(b,hidap place ... --progress-fd 3 \
               3>&1)). Mutually exclusive with $(b,--progress-file).")

(* Telemetry output paths are opened before the run starts: a typo in
   --trace/--metrics/--qor fails fast instead of silently discarding
   the telemetry of a completed (possibly long) run. *)
let open_output ~what path =
  match open_out path with
  | oc -> (path, oc)
  | exception Sys_error msg ->
    print_diag
      (Guard.Diag.error ~code:"bad-output-path" ~stage:"cli"
         (Printf.sprintf "cannot open %s output: %s" what msg));
    exit exit_usage

let write_output what out json =
  match out with
  | None -> ()
  | Some (path, oc) ->
    output_string oc (Obs.Jsonx.to_string json);
    output_char oc '\n';
    close_out oc;
    Format.eprintf "wrote %s %s@." what path

(* --progress-fd receives an inherited descriptor number; Unix.file_descr
   is abstractly an int on Unix, which the standard library provides no
   blessed conversion for. *)
let descr_of_int (n : int) : Unix.file_descr = Obj.magic n

let open_progress ~progress_file ~progress_fd =
  match (progress_file, progress_fd) with
  | Some _, Some _ -> die_usage "give at most one of --progress-file and --progress-fd"
  | Some path, None ->
    let _, oc = open_output ~what:"progress" path in
    Some (oc, true)
  | None, Some fd ->
    if fd < 0 then die_usage "--progress-fd must be a non-negative descriptor";
    Some (Unix.out_channel_of_descr (descr_of_int fd), false)
  | None, None -> None

(* Perf/pool/profile assembly shared by --perf-out and the QoR record.
   [wall_s] is the placement wall-clock; moves/sec divides the
   deterministic sa.moves counter by it. *)
let perf_info_of ~wall_s ~samples () =
  let counters = Obs.Perf.to_assoc Obs.Perf.global in
  let moves = Obs.Perf.get Obs.Perf.global Obs.Perf.sa_moves in
  let pool = Parexec.pool_stats () in
  { Qor.Record.perf_counters = counters;
    perf_moves_per_s = (if wall_s > 0.0 then float_of_int moves /. wall_s else 0.0);
    perf_wall_s = wall_s;
    pool_workers =
      Array.to_list
        (Array.map
           (fun (w : Parexec.worker_stats) ->
             { Qor.Record.pw_tasks = w.Parexec.tasks;
               pw_steals = w.Parexec.steals;
               pw_busy_us = w.Parexec.busy_us })
           pool.Parexec.workers);
    pool_wall_us = pool.Parexec.wall_us;
    pool_maps = pool.Parexec.maps;
    profile = samples }

let perf_out_json (p : Qor.Record.perf_info) =
  Obs.Jsonx.Obj
    [ ("schema", Obs.Jsonx.String "hidap-perf");
      ("version", Obs.Jsonx.Int 1);
      ("perf", Qor.Record.perf_info_json p) ]

(* Run [f] with the observability layer active when any output was
   requested; otherwise run it with the default no-op sink. [after] is
   called once the trace is finished and the metric sinks are written,
   with the spans and the still-populated global registry — the QoR
   ledger hook. *)
let with_obs ~trace ~metrics ~profile ?(force = false) ?(after = fun _ _ -> ()) f =
  let trace_out = Option.map (open_output ~what:"trace") trace in
  let metrics_out = Option.map (open_output ~what:"metrics") metrics in
  let active = force || Option.is_some trace_out || Option.is_some metrics_out || profile in
  if not active then f ()
  else begin
    Obs.Trace.start ();
    Obs.Metrics.set_enabled true;
    let finish () =
      let spans = Obs.Trace.finish () in
      Obs.Metrics.set_enabled false;
      write_output "trace" trace_out (Obs.Trace.to_chrome_json spans);
      write_output "metrics" metrics_out (Obs.Metrics.to_json Obs.Metrics.global);
      if profile then prerr_string (Obs.Trace.summary spans);
      after spans Obs.Metrics.global;
      Obs.Metrics.reset Obs.Metrics.global
    in
    Fun.protect ~finally:finish f
  end

(* ---- stats -------------------------------------------------------- *)

let stats_cmd =
  let run file circuit strict dot_hier dot_gseq =
    let _, design = design_of ~strict ~file ~circuit in
    let flat = elaborate_checked design in
    Format.printf "%a@." Netlist.Stats.pp (Netlist.Stats.compute flat);
    let gseq = Seqgraph.build flat in
    Format.printf "%a@." Seqgraph.pp_summary gseq;
    let tree = Hier.Tree.build flat in
    let dc =
      Hier.Decluster.run tree ~nh:(Hier.Tree.root tree) ~open_frac:0.4 ~min_frac:0.01
    in
    Format.printf "top-level declustering: %d blocks, %d glue nodes@."
      (List.length dc.Hier.Decluster.hcb)
      (List.length dc.Hier.Decluster.hcg);
    (match dot_hier with
    | Some path ->
      Viz.Dot.write_file path (Viz.Dot.hierarchy tree ());
      Format.printf "wrote %s@." path
    | None -> ());
    match dot_gseq with
    | Some path ->
      Viz.Dot.write_file path (Viz.Dot.seqgraph gseq ());
      Format.printf "wrote %s@." path
    | None -> ()
  in
  let dot_hier_arg =
    Arg.(value & opt (some string) None & info [ "dot-hier" ] ~docv:"OUT.dot"
           ~doc:"Write the hierarchy tree as Graphviz DOT.")
  in
  let dot_gseq_arg =
    Arg.(value & opt (some string) None & info [ "dot-gseq" ] ~docv:"OUT.dot"
           ~doc:"Write the sequential graph as Graphviz DOT.")
  in
  Cmd.v (Cmd.info "stats" ~doc:"Netlist statistics and abstraction sizes" ~exits)
    Term.(const run $ file_arg $ circuit_arg $ strict_arg $ dot_hier_arg $ dot_gseq_arg)

(* ---- place -------------------------------------------------------- *)

let place_cmd =
  let run file circuit seed lambda jobs svg ascii save strict budget trace metrics
      profile qor profile_out perf_out progress_file progress_fd ckpt_dir ckpt_every
      resume full_eval =
    if resume && ckpt_dir = None then die_usage "--resume requires --checkpoint-dir";
    (* SIGINT/SIGTERM on a checkpointed run: ask the flow to stop at
       its next budget poll instead of dying mid-write; the handler
       below snapshots and exits with the documented code. Without a
       checkpoint dir the default signal behaviour is kept. *)
    Guard.Budget.clear_cancel ();
    if ckpt_dir <> None then begin
      let on_signal _ = Guard.Budget.request_cancel () in
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
    end;
    let faults, budgets = supervision ~budget in
    let qor_out = Option.map (open_output ~what:"qor") qor in
    let profile_out = Option.map (open_output ~what:"profile") profile_out in
    let perf_out = Option.map (open_output ~what:"perf") perf_out in
    let progress = open_progress ~progress_file ~progress_fd in
    (* Perf counters piggyback on any structured output request; they
       are cheap (one gated add per SA move) and deterministic, so the
       outputs agree regardless of which one asked. *)
    let want_perf =
      Option.is_some perf_out || Option.is_some qor_out || Option.is_some metrics
    in
    let captured = ref None in
    let perf_captured = ref None in
    let after spans registry =
      match (!captured, qor_out) with
      | Some (name, flat, config, r, measured, degradations, ckpt), Some _ ->
        let record =
          Qor.Record.of_place ~circuit:name ~flat ~config ~spans ~registry
            ~degradations ?measured ?ckpt ?perf:!perf_captured r
        in
        write_output "qor" qor_out (Qor.Record.to_json record)
      | _ -> ()
    in
    (* The exit happens after [with_obs] unwinds so requested telemetry
       outputs are written even for degraded or audit-failing runs. *)
    let run_body () =
      with_obs ~trace ~metrics ~profile
        ~force:(Option.is_some qor_out || Option.is_some profile_out)
        ~after
      @@ fun () ->
      let name, design = design_of ~strict ~file ~circuit in
      let flat = elaborate_checked design in
      let config =
        { (config_of ~seed ~lambda ~jobs) with Hidap.Config.faults; budgets;
          incremental_eval =
            (not full_eval)
            && Hidap.Config.default.Hidap.Config.incremental_eval }
      in
      let die = Hidap.die_for flat ~config in
      let flat_diags = Guard.Validate.flat ~strict ~die flat in
      List.iter print_diag flat_diags;
      if Guard.Validate.errors flat_diags <> [] then exit_invalid
      else begin
        if Option.is_some profile_out then Obs.Sampler.start ();
        (match progress with
        | Some (oc, close_on_disable) -> Obs.Stream.enable ~close_on_disable oc
        | None -> ());
        Obs.Stream.run_start ~circuit:name ~seed:config.Hidap.Config.seed
          ~jobs:config.Hidap.Config.jobs;
        if want_perf then begin
          Obs.Perf.reset Obs.Perf.global;
          Obs.Perf.set_enabled true
        end;
        Parexec.reset_pool_stats ();
        let t0 = Obs.Clock.now_s () in
        let session = ref None in
        (* Quality metrics are measured inside the supervised region:
           the cell-placement stage they drive has its own fault site
           and fallback, and its degradations must land in the ledger
           (and hence the QoR record), not fire after disarm. The
           checkpoint session starts inside it too: resume-time
           rollbacks and snapshot-write failures belong in the same
           ledger. *)
        let (r, measured), degradations =
          try
            Guard.Supervisor.with_run ~budgets ~faults (fun () ->
              (match ckpt_dir with
              | None -> ()
              | Some dir ->
                let fp =
                  { Ckpt.State.circuit = name;
                    seed = config.Hidap.Config.seed;
                    lambda = config.Hidap.Config.lambda;
                    sa_starts = config.Hidap.Config.sa_starts;
                    cells = Netlist.Flat.cell_count flat;
                    macro_count = Netlist.Flat.macro_count flat }
                in
                (match Ckpt.Session.start ~every:ckpt_every ~dir ~resume fp with
                | Error d ->
                  print_diag d;
                  exit exit_invalid
                | Ok s ->
                  (match Ckpt.Session.resumed_from s with
                  | Some f -> Format.eprintf "checkpoint: resuming from %s/%s@." dir f
                  | None -> ());
                  session := Some s));
              let r = Hidap.place ~config ~die ?ckpt:!session flat in
              let measured =
                match qor_out with
                | None -> None
                | Some _ ->
                  let cp_macros =
                    List.map
                      (fun (p : Hidap.macro_placement) ->
                        { Cellplace.fid = p.Hidap.fid; rect = p.Hidap.rect;
                          orient = p.Hidap.orient })
                      r.Hidap.placements
                  in
                  let m, _ =
                    Evalflow.measure ~flat ~gseq:r.Hidap.gseq ~ports:r.Hidap.ports
                      ~die:r.Hidap.die ~macros:cp_macros
                  in
                  Some m
              in
              (r, measured))
          with Guard.Budget.Cancelled _ ->
            (* The signal handler requested a stop: write a final
               snapshot so --resume continues bit-identically, then
               unwind to the interrupted exit code. *)
            (match !session with
            | Some s -> (try Ckpt.Session.save_now s ~stage:false with _ -> ())
            | None -> ());
            Format.eprintf
              "hidap: interrupted; final checkpoint written, continue with \
               --resume@.";
            Obs.Stream.run_end ~status:"interrupted";
            raise Interrupted
        in
        let ckpt_summary =
          Option.map
            (fun s ->
              let sm = Ckpt.Session.summary s in
              Format.eprintf "checkpoint: %d snapshot(s) written, %d instance(s) reused@."
                sm.Ckpt.Session.snapshots_written sm.Ckpt.Session.instances_reused;
              { Qor.Record.resumed_from = sm.Ckpt.Session.resumed_from;
                snapshots_written = sm.Ckpt.Session.snapshots_written;
                instances_reused = sm.Ckpt.Session.instances_reused })
            !session
        in
        let wall_s = Obs.Clock.now_s () -. t0 in
        if want_perf then Obs.Perf.set_enabled false;
        let samples = if Obs.Sampler.running () then Obs.Sampler.stop () else [] in
        (match profile_out with
        | Some (path, oc) ->
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            (Obs.Sampler.to_collapsed_lines samples);
          close_out oc;
          Format.eprintf "wrote profile %s@." path
        | None -> ());
        if want_perf || samples <> [] then
          perf_captured := Some (perf_info_of ~wall_s ~samples ());
        (match (!perf_captured, perf_out) with
        | Some p, Some _ -> write_output "perf" perf_out (perf_out_json p)
        | _ -> ());
        captured := Some (name, flat, config, r, measured, degradations, ckpt_summary);
        List.iter
          (fun e -> Format.eprintf "degraded: %a@." Guard.Supervisor.pp_entry e)
          degradations;
        Format.printf "placed %d macros in %.2fs (lambda %.2f, overlap %.2f)@."
          (List.length r.Hidap.placements)
          wall_s r.Hidap.lambda (Hidap.overlap_area r);
        List.iter
          (fun (p : Hidap.macro_placement) ->
            Format.printf "%s %.3f %.3f %.3f %.3f %s@."
              flat.Netlist.Flat.nodes.(p.Hidap.fid).Netlist.Flat.path p.Hidap.rect.Geom.Rect.x
              p.Hidap.rect.Geom.Rect.y p.Hidap.rect.Geom.Rect.w p.Hidap.rect.Geom.Rect.h
              (Geom.Orientation.to_string p.Hidap.orient))
          r.Hidap.placements;
        if ascii then
          print_string
            (Viz.Ascii.floorplan ~die:r.Hidap.die
               ~rects:
                 (List.map (fun (p : Hidap.macro_placement) -> ("M", p.Hidap.rect)) r.Hidap.placements)
               ~width:64 ~height:28 ());
        let placements =
          List.map
            (fun (p : Hidap.macro_placement) -> (p.Hidap.fid, p.Hidap.rect, p.Hidap.orient))
            r.Hidap.placements
        in
        (match save with
        | Some path ->
          Hidap.Placement_io.save path
            (Hidap.Placement_io.make ~flat ~die:r.Hidap.die ~placements);
          Format.printf "saved placement to %s@." path
        | None -> ());
        (match svg with
        | Some path ->
          let rects =
            List.map
              (fun (p : Hidap.macro_placement) ->
                ( flat.Netlist.Flat.nodes.(p.Hidap.fid).Netlist.Flat.base,
                  p.Hidap.rect, Viz.Svg.macro_style ))
              r.Hidap.placements
          in
          Viz.Svg.write_file path (Viz.Svg.floorplan ~die:r.Hidap.die ~rects ());
          Format.printf "wrote %s@." path
        | None -> ());
        let audit = Guard.Audit.run ~flat ~die:r.Hidap.die ~placements in
        let audit_ok = Guard.Audit.ok audit in
        Obs.Stream.run_end
          ~status:
            (if not audit_ok then "failed"
             else if degradations <> [] then "degraded"
             else "ok");
        Obs.Stream.disable ();
        if not audit_ok then begin
          Guard.Audit.pp_summary Format.err_formatter audit;
          exit_audit
        end
        else if Guard.Supervisor.budget_degraded degradations then exit_budget
        else 0
      end
    in
    (* The stream must be flushed and closed on every path — normal,
       interrupted, or exceptional — so an NDJSON consumer never sees
       a torn tail. [disable] is idempotent, so the extra call on the
       normal path (which already disabled) is free. *)
    let code =
      match run_body () with
      | code -> code
      | exception Interrupted ->
        Obs.Stream.disable ();
        exit_interrupted
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Obs.Stream.disable ();
        Printexc.raise_with_backtrace e bt
    in
    Obs.Stream.disable ();
    if code <> 0 then exit code
  in
  let ascii_arg =
    Arg.(value & flag & info [ "ascii" ] ~doc:"Print an ASCII rendering of the floorplan.")
  in
  let save_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"OUT.place"
           ~doc:"Save the placement to a file (reload with 'view').")
  in
  let ckpt_dir_arg =
    Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR"
           ~doc:"Checkpoint the run into DIR (created if needed): a crash-safe \
                 snapshot after every N completed floorplan instances and at \
                 each stage boundary. Inspect with $(b,hidap ckpt).")
  in
  let ckpt_every_arg =
    Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Completed floorplan instances between periodic snapshots \
                 (default 1). Stage boundaries always snapshot.")
  in
  let resume_arg =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Resume from the newest valid snapshot in --checkpoint-dir. \
                 Finished work is replayed instead of recomputed and the final \
                 placement is bit-identical to an uninterrupted run. An empty \
                 or wholly corrupted directory starts from scratch, so a \
                 retry loop can always pass --resume.")
  in
  let full_eval_arg =
    Arg.(value & flag & info [ "full-eval" ]
           ~doc:"Evaluate every SA move with the full (non-incremental) layout \
                 evaluation. The placement is bit-identical to the default \
                 incremental path — this flag exists to check exactly that, \
                 and to benchmark the incremental speedup (DESIGN.md \
                 section 14).")
  in
  Cmd.v (Cmd.info "place" ~doc:"Run the HiDaP macro placement flow" ~exits)
    Term.(const run $ file_arg $ circuit_arg $ seed_arg $ lambda_arg $ jobs_arg $ svg_arg
          $ ascii_arg $ save_arg $ strict_arg $ budget_arg $ trace_arg $ metrics_arg
          $ profile_arg $ qor_arg $ profile_out_arg $ perf_out_arg $ progress_file_arg
          $ progress_fd_arg $ ckpt_dir_arg $ ckpt_every_arg $ resume_arg $ full_eval_arg)

(* ---- eval --------------------------------------------------------- *)

let eval_cmd =
  let run file circuit seed jobs strict budget trace metrics profile qor =
    let faults, budgets = supervision ~budget in
    let qor_out = Option.map (open_output ~what:"qor") qor in
    let captured = ref None in
    let after spans registry =
      match (!captured, qor_out) with
      | Some (name, flat, config, res, degradations), Some _ ->
        let records =
          Qor.Record.of_eval ~circuit:name ~flat ~config ~spans ~registry
            ~degradations res
        in
        write_output "qor" qor_out (Qor.Record.ledger_json records)
      | _ -> ()
    in
    let code =
      with_obs ~trace ~metrics ~profile ~force:(Option.is_some qor_out) ~after
      @@ fun () ->
      let name, design = design_of ~strict ~file ~circuit in
      let config =
        { Hidap.Config.default with Hidap.Config.seed; jobs = resolve_jobs jobs;
          faults; budgets }
      in
      let res, degradations =
        Guard.Supervisor.with_run ~budgets ~faults (fun () ->
            Evalflow.run_all ~config ~name design)
      in
      captured := Some (name, elaborate_checked design, config, res, degradations);
      List.iter
        (fun e -> Format.eprintf "degraded: %a@." Guard.Supervisor.pp_entry e)
        degradations;
    Format.printf "circuit %s: %d cells, %d macros@." res.Evalflow.circuit
      res.Evalflow.cells res.Evalflow.macro_count;
    let rows =
      List.map
        (fun (r : Evalflow.run) ->
          let m = r.Evalflow.metrics in
          [ Evalflow.flow_name r.Evalflow.kind;
            Report.Table.fmt_f 3 m.Evalflow.wl_m;
            Report.Table.fmt_f 3 (Evalflow.normalized_wl res r.Evalflow.kind);
            Report.Table.fmt_f 2 m.Evalflow.grc_pct;
            Report.Table.fmt_f 1 m.Evalflow.wns_pct;
            Report.Table.fmt_f 0 m.Evalflow.tns;
            Report.Table.fmt_f 2 m.Evalflow.runtime_s ])
        res.Evalflow.runs
    in
    print_string
      (Report.Table.render
         ~header:[ "flow"; "WL(m)"; "WLnorm"; "GRC%"; "WNS%"; "TNS"; "rt(s)" ]
         rows);
    (* λ sweep of the HiDaP run, losing candidates included. *)
      List.iter
        (fun (r : Evalflow.run) ->
          match r.Evalflow.sweep_trace with
          | [] -> ()
          | sweep ->
            Format.printf "%s lambda sweep:%s@."
              (Evalflow.flow_name r.Evalflow.kind)
              (String.concat ""
                 (List.map
                    (fun (l, o) -> Printf.sprintf "  %.1f->%.0f" l o)
                    sweep)))
        res.Evalflow.runs;
      if Guard.Supervisor.budget_degraded degradations then exit_budget else 0
    in
    if code <> 0 then exit code
  in
  Cmd.v (Cmd.info "eval" ~doc:"Compare the IndEDA / HiDaP / handFP flows" ~exits)
    Term.(const run $ file_arg $ circuit_arg $ seed_arg $ jobs_arg $ strict_arg
          $ budget_arg $ trace_arg $ metrics_arg $ profile_arg $ qor_arg)

(* ---- check -------------------------------------------------------- *)

let check_cmd =
  let run file circuit circuits strict audit seed jobs list_sites list_codes =
    if list_sites then
      List.iter
        (fun (site, fallback) -> Format.printf "%s\t%s@." site fallback)
        Guard.Fault.sites
    else if list_codes then
      List.iter
        (fun (code, severity, doc) -> Format.printf "%s\t%s\t%s@." code severity doc)
        Guard.Diag.codes
    else begin
      let names l = String.split_on_char ',' l |> List.filter (fun s -> s <> "") in
      let targets =
        match (file, circuit, circuits) with
        | Some path, None, None -> [ `File path ]
        | None, Some name, None -> [ `Circuit name ]
        | None, None, Some l -> List.map (fun n -> `Circuit n) (names l)
        | None, None, None -> die_usage "give FILE.hnl, --circuit or --circuits"
        | _ -> die_usage "give exactly one of FILE.hnl, --circuit or --circuits"
      in
      (* Check every target before exiting, reporting the worst failure:
         one bad circuit must not mask diagnostics for the rest. *)
      let worst = ref 0 in
      let bump c = if c > !worst then worst := c in
      List.iter
        (fun target ->
          let path, name, design =
            match target with
            | `File path ->
              ( Some path,
                Filename.remove_extension (Filename.basename path),
                load_design path )
            | `Circuit name ->
              (match Circuitgen.Suite.find name with
              | Some c -> (None, name, Circuitgen.Gen.generate c.Circuitgen.Suite.params)
              | None -> die_usage "unknown suite circuit %s (c1..c8)" name)
          in
          match validate_design ~strict ?path design with
          | Error n ->
            Format.printf "%s: INVALID (%d error%s)@." name n (if n = 1 then "" else "s");
            bump exit_invalid
          | Ok design ->
            let flat = elaborate_checked design in
            let config = config_of ~seed ~lambda:None ~jobs in
            let die = Hidap.die_for flat ~config in
            let diags = Guard.Validate.flat ~strict ~die flat in
            List.iter (print_diag ?path) diags;
            if Guard.Validate.errors diags <> [] then begin
              Format.printf "%s: INVALID@." name;
              bump exit_invalid
            end
            else if audit then begin
              let r, degradations =
                Guard.Supervisor.with_run (fun () -> Hidap.place ~config ~die flat)
              in
              List.iter
                (fun e -> Format.eprintf "degraded: %a@." Guard.Supervisor.pp_entry e)
                degradations;
              let placements =
                List.map
                  (fun (p : Hidap.macro_placement) ->
                    (p.Hidap.fid, p.Hidap.rect, p.Hidap.orient))
                  r.Hidap.placements
              in
              let report = Guard.Audit.run ~flat ~die:r.Hidap.die ~placements in
              Guard.Audit.pp_summary Format.std_formatter report;
              if Guard.Audit.ok report then
                Format.printf "%s: OK (validated and audited)@." name
              else begin
                Format.printf "%s: AUDIT FAILED@." name;
                bump exit_audit
              end
            end
            else Format.printf "%s: OK@." name)
        targets;
      if !worst <> 0 then exit !worst
    end
  in
  let circuits_arg =
    Arg.(value & opt (some string) None & info [ "circuits" ] ~docv:"c1,c2"
           ~doc:"Comma-separated suite circuits to check.")
  in
  let audit_arg =
    Arg.(value & flag & info [ "audit" ]
           ~doc:"Also run the full placement flow and the legality audit on \
                 each target.")
  in
  let list_sites_arg =
    Arg.(value & flag & info [ "list-fault-sites" ]
           ~doc:"Print the registered fault-injection sites (name, fallback) \
                 and exit; the names are valid in $(b,HIDAP_FAULT).")
  in
  let list_codes_arg =
    Arg.(value & flag & info [ "list-codes" ]
           ~doc:"Print the stable diagnostic code table (code, severity, \
                 meaning) and exit. The table mirrors DESIGN.md section 10 \
                 and CI asserts the two stay in sync.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Validate designs (and optionally audit their placements)" ~exits)
    Term.(const run $ file_arg $ circuit_arg $ circuits_arg $ strict_arg $ audit_arg
          $ seed_arg $ jobs_arg $ list_sites_arg $ list_codes_arg)

(* ---- gen ---------------------------------------------------------- *)

let gen_cmd =
  let run circuit out =
    match circuit with
    | None -> die_usage "--circuit is required"
    | Some name ->
      let _, design = design_of ~strict:false ~file:None ~circuit:(Some name) in
      (match out with
      | Some path ->
        Hnl.Printer.write_file path design;
        Format.printf "wrote %s@." path
      | None -> print_string (Hnl.Printer.to_string design))
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE.hnl"
           ~doc:"Output file (stdout when omitted).")
  in
  Cmd.v (Cmd.info "gen" ~doc:"Emit a synthetic suite circuit as HNL text")
    Term.(const run $ circuit_arg $ out_arg)

(* ---- view --------------------------------------------------------- *)

let view_cmd =
  let run file circuit placement_file =
    let _, design = design_of ~strict:false ~file ~circuit in
    let flat = elaborate_checked design in
    match Hidap.Placement_io.load placement_file with
    | Error msg ->
      Format.eprintf "%s: %s@." placement_file msg;
      exit exit_invalid
    | Ok pl ->
      (match Hidap.Placement_io.resolve flat pl with
      | Error msg ->
        Format.eprintf "%s@." msg;
        exit exit_invalid
      | Ok placements ->
        let die = pl.Hidap.Placement_io.die in
        let gseq = Seqgraph.build flat in
        let ports = Hidap.Port_plan.make gseq ~die in
        let macros =
          List.map
            (fun (fid, rect, orient) -> { Cellplace.fid; rect; orient })
            placements
        in
        let m, _ = Evalflow.measure ~flat ~gseq ~ports ~die ~macros in
        Format.printf "WL %.3f m  GRC %.2f%%  WNS %.1f%%  TNS %.0f@." m.Evalflow.wl_m
          m.Evalflow.grc_pct m.Evalflow.wns_pct m.Evalflow.tns;
        print_string
          (Viz.Ascii.floorplan ~die
             ~rects:(List.map (fun (_, r, _) -> ("M", r)) placements)
             ~width:64 ~height:28 ()))
  in
  let placement_arg =
    Arg.(required & opt (some file) None & info [ "placement" ] ~docv:"FILE.place"
           ~doc:"Placement file produced by 'place --save'.")
  in
  Cmd.v (Cmd.info "view" ~doc:"Evaluate and render a saved placement")
    Term.(const run $ file_arg $ circuit_arg $ placement_arg)

(* ---- report ------------------------------------------------------- *)

let default_baselines = Filename.concat "bench" "baselines.json"

let baselines_arg =
  Arg.(value & opt (some string) None & info [ "baselines" ] ~docv:"FILE.json"
         ~doc:(Printf.sprintf
                 "Baselines file for the QoR delta tables / regression gate \
                  (default %s when it exists)." default_baselines))

let load_baselines ~required path =
  let path, explicit =
    match path with Some p -> (p, true) | None -> (default_baselines, false)
  in
  if (not explicit) && not (Sys.file_exists path) then begin
    if required then begin
      Format.eprintf
        "hidap: no baselines at %s; run 'hidap bench --update-baselines' first@." path;
      exit 1
    end;
    None
  end
  else
    match Qor.Baseline.load path with
    | Ok b -> Some b
    | Error msg ->
      Format.eprintf "hidap: %s@." msg;
      exit 1

let report_one ?baseline ~input ~output () =
  match Qor.Record.load_ledger input with
  | Error msg ->
    Format.eprintf "hidap: %s@." msg;
    exit 1
  | Ok records ->
    let title = Printf.sprintf "HiDaP run report — %s" (Filename.basename input) in
    Qor.Html.write_file output (Qor.Html.render ?baseline ~title records);
    Format.printf "wrote %s (%d record%s)@." output (List.length records)
      (if List.length records = 1 then "" else "s")

let report_cmd =
  let run input output baselines =
    let baseline = load_baselines ~required:false baselines in
    if Sys.is_directory input then begin
      let entries =
        Sys.readdir input |> Array.to_list |> List.sort compare
        |> List.filter (fun f -> Filename.check_suffix f ".json")
        |> List.filter_map (fun f ->
               let path = Filename.concat input f in
               match Qor.Record.load_ledger path with
               | Ok (_ :: _) -> Some path
               | Ok [] | Error _ -> None)
      in
      if entries = [] then begin
        Format.eprintf "hidap: no QoR ledgers found under %s@." input;
        exit 1
      end;
      List.iter
        (fun path ->
          report_one ?baseline ~input:path
            ~output:(Filename.remove_extension path ^ ".html")
            ())
        entries
    end
    else
      let output =
        match output with
        | Some o -> o
        | None -> Filename.remove_extension input ^ ".html"
      in
      report_one ?baseline ~input ~output ()
  in
  let input_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LEDGER|DIR"
           ~doc:"A QoR ledger JSON file, or a directory of them.")
  in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.html"
           ~doc:"Output file (default: ledger path with .html extension).")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Render QoR ledgers as self-contained HTML run reports")
    Term.(const run $ input_arg $ output_arg $ baselines_arg)

(* ---- explain / diff ----------------------------------------------- *)

(* Both commands read QoR ledgers written by `place --qor` (one record)
   or `eval --qor` (one per flow); the HiDaP record is the one carrying
   the attribution section, so prefer it. *)
let load_run path =
  match Qor.Record.load_ledger path with
  | Error msg ->
    Format.eprintf "hidap: %s@." msg;
    exit exit_invalid
  | Ok [] ->
    Format.eprintf "hidap: %s: empty ledger@." path;
    exit exit_invalid
  | Ok records ->
    (match
       List.find_opt (fun r -> r.Qor.Record.cost_breakdown <> None) records
     with
    | Some r -> r
    | None -> List.hd records)

let top_arg =
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"K"
         ~doc:"How many blocks / affinity pairs to show (default 10).")

let take k l =
  let rec go k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go k l

let pct_of ~total v = if total <> 0.0 then 100.0 *. v /. total else 0.0

let term_value cb name =
  Option.value ~default:0.0 (List.assoc_opt name cb.Qor.Record.cb_terms)

let explain_cmd =
  let run input top heatmap =
    let r = load_run input in
    match r.Qor.Record.cost_breakdown with
    | None ->
      Format.eprintf
        "hidap: %s carries no cost_breakdown section (eval-path record, a top \
         instance replayed from a checkpoint, or a pre-v3 record); re-run \
         'hidap place --qor' to attribute the cost@."
        input;
      exit exit_invalid
    | Some cb ->
      Format.printf "%s · %s · seed %d · total cost %.6g@." r.Qor.Record.circuit
        r.Qor.Record.flow r.Qor.Record.seed cb.Qor.Record.cb_total;
      let total = cb.Qor.Record.cb_total in
      print_string
        (Report.Table.render ~header:[ "term"; "value"; "share" ]
           (List.map
              (fun (name, v) ->
                [ name; Report.Table.fmt_f 6 v;
                  Report.Table.fmt_f 2 (pct_of ~total v) ^ "%" ])
              cb.Qor.Record.cb_terms));
      (match cb.Qor.Record.cb_blocks with
      | [] -> ()
      | blocks ->
        let wl_term = term_value cb "wirelength" in
        Format.printf "top %d blocks by wirelength share:@." top;
        print_string
          (Report.Table.render
             ~header:[ "block"; "wl"; "wl%"; "at_shift"; "am_def"; "macro_def" ]
             (take top
                (List.sort
                   (fun (a : Qor.Record.block_contrib) b ->
                     compare b.Qor.Record.bc_wl a.Qor.Record.bc_wl)
                   blocks)
                |> List.map (fun (b : Qor.Record.block_contrib) ->
                       [ b.Qor.Record.bc_name;
                         Report.Table.fmt_f 2 b.Qor.Record.bc_wl;
                         Report.Table.fmt_f 1 (pct_of ~total:wl_term b.Qor.Record.bc_wl)
                         ^ "%";
                         Report.Table.fmt_f 2 b.Qor.Record.bc_at_shift;
                         Report.Table.fmt_f 2 b.Qor.Record.bc_am_deficit;
                         Report.Table.fmt_f 2 b.Qor.Record.bc_macro_deficit ]))));
      (match cb.Qor.Record.cb_pairs with
      | [] -> ()
      | pairs ->
        let wl_term = term_value cb "wirelength" in
        Format.printf "top %d affinity pairs by wirelength contribution:@." top;
        print_string
          (Report.Table.render ~header:[ "a"; "b"; "weight"; "wl"; "wl%" ]
             (take top
                (List.sort
                   (fun (a : Qor.Record.pair_contrib) b ->
                     compare b.Qor.Record.pair_wl a.Qor.Record.pair_wl)
                   pairs)
                |> List.map (fun (p : Qor.Record.pair_contrib) ->
                       [ p.Qor.Record.pair_a; p.Qor.Record.pair_b;
                         Report.Table.fmt_f 3 p.Qor.Record.pair_weight;
                         Report.Table.fmt_f 2 p.Qor.Record.pair_wl;
                         Report.Table.fmt_f 1 (pct_of ~total:wl_term p.Qor.Record.pair_wl)
                         ^ "%" ]))));
      match heatmap with
      | None -> ()
      | Some path ->
        let labels, values = Qor.Html.contribution_matrix cb in
        Viz.Svg.write_file path (Viz.Svg.contribution_heatmap ~labels ~values ());
        Format.printf "wrote %s@." path
  in
  let input_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"RUN.json"
           ~doc:"QoR ledger written by 'place --qor' (or 'eval --qor').")
  in
  let heatmap_arg =
    Arg.(value & opt (some string) None & info [ "heatmap" ] ~docv:"OUT.svg"
           ~doc:"Write the affinity-pair wirelength contributions as a labelled \
                 heat-map SVG.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Attribute a run's cost to terms, blocks and affinity pairs" ~exits)
    Term.(const run $ input_arg $ top_arg $ heatmap_arg)

let diff_cmd =
  let run input_a input_b top =
    let ra = load_run input_a and rb = load_run input_b in
    Format.printf "A %s: %s · %s · seed %d · WL %.4g um@." input_a
      ra.Qor.Record.circuit ra.Qor.Record.flow ra.Qor.Record.seed
      ra.Qor.Record.qm.Qor.Record.wl_um;
    Format.printf "B %s: %s · %s · seed %d · WL %.4g um@." input_b
      rb.Qor.Record.circuit rb.Qor.Record.flow rb.Qor.Record.seed
      rb.Qor.Record.qm.Qor.Record.wl_um;
    (match (ra.Qor.Record.cost_breakdown, rb.Qor.Record.cost_breakdown) with
    | Some ca, Some cbb ->
      Format.printf "cost %.6g -> %.6g (%+.2f%%)@." ca.Qor.Record.cb_total
        cbb.Qor.Record.cb_total
        (if ca.Qor.Record.cb_total <> 0.0 then
           100.0 *. ((cbb.Qor.Record.cb_total /. ca.Qor.Record.cb_total) -. 1.0)
         else 0.0);
      let names =
        List.map fst ca.Qor.Record.cb_terms
        @ List.filter
            (fun n -> not (List.mem_assoc n ca.Qor.Record.cb_terms))
            (List.map fst cbb.Qor.Record.cb_terms)
      in
      print_string
        (Report.Table.render ~header:[ "term"; "A"; "B"; "delta"; "delta%" ]
           (List.map
              (fun name ->
                let a = term_value ca name and b = term_value cbb name in
                [ name; Report.Table.fmt_f 6 a; Report.Table.fmt_f 6 b;
                  Report.Table.fmt_f 6 (b -. a);
                  (if a <> 0.0 then
                     Report.Table.fmt_f 2 (100.0 *. ((b /. a) -. 1.0)) ^ "%"
                   else "-") ])
              names));
      (* per-pair wl deltas, matched on the unordered endpoint names *)
      let key (p : Qor.Record.pair_contrib) =
        if p.Qor.Record.pair_a <= p.Qor.Record.pair_b then
          (p.Qor.Record.pair_a, p.Qor.Record.pair_b)
        else (p.Qor.Record.pair_b, p.Qor.Record.pair_a)
      in
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun p ->
          let k = key p in
          let wa, _ = try Hashtbl.find tbl k with Not_found -> (0.0, 0.0) in
          Hashtbl.replace tbl k (wa +. p.Qor.Record.pair_wl, 0.0))
        ca.Qor.Record.cb_pairs;
      List.iter
        (fun p ->
          let k = key p in
          let wa, wb = try Hashtbl.find tbl k with Not_found -> (0.0, 0.0) in
          Hashtbl.replace tbl k (wa, wb +. p.Qor.Record.pair_wl))
        cbb.Qor.Record.cb_pairs;
      let deltas =
        Hashtbl.fold (fun (a, b) (wa, wb) acc -> ((a, b), wa, wb) :: acc) tbl []
        |> List.sort (fun (ka, wa, wba) (kb, wb2, wbb) ->
               match
                 compare (abs_float (wbb -. wb2)) (abs_float (wba -. wa))
               with
               | 0 -> compare ka kb
               | c -> c)
      in
      (match deltas with
      | [] -> ()
      | _ ->
        Format.printf "top %d affinity pairs by |wl delta|:@." top;
        print_string
          (Report.Table.render ~header:[ "a"; "b"; "A wl"; "B wl"; "delta" ]
             (take top deltas
              |> List.map (fun ((a, b), wa, wb) ->
                     [ a; b; Report.Table.fmt_f 2 wa; Report.Table.fmt_f 2 wb;
                       Report.Table.fmt_f 2 (wb -. wa) ]))))
    | _ ->
      let missing =
        match (ra.Qor.Record.cost_breakdown, rb.Qor.Record.cost_breakdown) with
        | None, None -> "both runs"
        | None, _ -> input_a
        | _ -> input_b
      in
      Format.printf
        "(no cost_breakdown in %s; term and pair deltas skipped — macro \
         displacement below)@."
        missing);
    (* per-macro displacement, always available from the geometry *)
    let moved =
      List.filter_map
        (fun (ma : Qor.Record.macro) ->
          List.find_opt
            (fun (mb : Qor.Record.macro) ->
              mb.Qor.Record.macro_name = ma.Qor.Record.macro_name)
            rb.Qor.Record.macros
          |> Option.map (fun (mb : Qor.Record.macro) ->
                 let d =
                   Geom.Point.euclidean
                     (Geom.Rect.center ma.Qor.Record.macro_rect)
                     (Geom.Rect.center mb.Qor.Record.macro_rect)
                 in
                 (ma, mb, d)))
        ra.Qor.Record.macros
    in
    (match moved with
    | [] -> Format.printf "(no common macros between the two runs)@."
    | _ ->
      let n = List.length moved in
      let mean = List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 moved /. float_of_int n in
      Format.printf "macro displacement: %d common macro(s), mean %.2f um@." n mean;
      Format.printf "top %d macros by displacement:@." top;
      print_string
        (Report.Table.render
           ~header:[ "macro"; "disp(um)"; "A orient"; "B orient" ]
           (take top
              (List.sort (fun (_, _, da) (_, _, db) -> compare db da) moved)
            |> List.map
                 (fun ((ma : Qor.Record.macro), (mb : Qor.Record.macro), d) ->
                   [ ma.Qor.Record.macro_name; Report.Table.fmt_f 2 d;
                     Geom.Orientation.to_string ma.Qor.Record.orient;
                     (let oa = Geom.Orientation.to_string ma.Qor.Record.orient
                      and ob = Geom.Orientation.to_string mb.Qor.Record.orient in
                      if oa = ob then ob else ob ^ " *") ]))));
    let unmatched =
      List.length ra.Qor.Record.macros + List.length rb.Qor.Record.macros
      - (2 * List.length moved)
    in
    if unmatched > 0 then
      Format.printf "(%d macro(s) present in only one run)@." unmatched
  in
  let input_a_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"RUN_A.json"
           ~doc:"Baseline run's QoR ledger.")
  in
  let input_b_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"RUN_B.json"
           ~doc:"Candidate run's QoR ledger.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare two runs term by term and macro by macro" ~exits)
    Term.(const run $ input_a_arg $ input_b_arg $ top_arg)

(* ---- bench -------------------------------------------------------- *)

let default_speed_baselines = Filename.concat "bench" "speed_baselines.json"

let bench_cmd =
  let run circuits baselines update jobs qor report_out speed_out check_incremental =
    let qor_out = Option.map (open_output ~what:"qor") qor in
    let speed_out = Option.map (open_output ~what:"speed") speed_out in
    let names = String.split_on_char ',' circuits |> List.filter (fun s -> s <> "") in
    let per_circuit =
      List.map
        (fun name ->
          match Circuitgen.Suite.find name with
          | None -> die_usage "unknown suite circuit %s (c1..c8)" name
          | Some c ->
            let design = Circuitgen.Gen.generate c.Circuitgen.Suite.params in
            let flat = Netlist.Flat.elaborate design in
            let config =
              { Hidap.Config.default with Hidap.Config.jobs = resolve_jobs jobs }
            in
            Obs.Metrics.reset Obs.Metrics.global;
            Obs.Metrics.set_enabled true;
            Obs.Perf.reset Obs.Perf.global;
            Obs.Perf.set_enabled true;
            let gc_before = Obs.Gcstats.snapshot () in
            Obs.Trace.start ();
            let res =
              Fun.protect
                ~finally:(fun () ->
                  Obs.Metrics.set_enabled false;
                  Obs.Perf.set_enabled false)
                (fun () -> Evalflow.run_all ~config ~name design)
            in
            let spans = Obs.Trace.finish () in
            let gc_delta =
              Obs.Gcstats.diff ~before:gc_before ~after:(Obs.Gcstats.snapshot ())
            in
            let sa_moves = Obs.Perf.get Obs.Perf.global Obs.Perf.sa_moves in
            let records =
              Qor.Record.of_eval ~circuit:name ~flat ~config ~spans
                ~registry:Obs.Metrics.global res
            in
            Obs.Metrics.reset Obs.Metrics.global;
            Format.printf "bench %s: %d cells, %d macros, %d flows@." name
              res.Evalflow.cells res.Evalflow.macro_count (List.length records);
            (* Throughput of the HiDaP leg: its measured runtime against
               the deterministic move count of the whole sweep. *)
            let wall_s =
              List.fold_left
                (fun acc (r : Qor.Record.t) ->
                  if r.Qor.Record.flow = "HiDaP" then
                    acc +. r.Qor.Record.qm.Qor.Record.runtime_s
                  else acc)
                0.0 records
            in
            (* Peak RSS is process-wide and monotone: in a multi-circuit
               run each entry records the high-water mark so far. *)
            let entry =
              Qor.Speed.entry ~peak_rss_kb:(Obs.Gcstats.peak_rss_kb ())
                ~major_words:gc_delta.Obs.Gcstats.major_words ~circuit:name ~wall_s
                ~sa_moves ()
            in
            (* --check-incremental: a second HiDaP-only leg with the
               incremental evaluator forced off. The placements must be
               bit-identical (DESIGN.md section 14); its throughput lands
               in the speed document as "<circuit>-full" so the summary
               shows both paths side by side. *)
            let extra =
              if not check_incremental then []
              else begin
                let gseq =
                  Seqgraph.build ~bit_threshold:config.Hidap.Config.bit_threshold flat
                in
                let die = Hidap.die_for flat ~config in
                let ports = Hidap.Port_plan.make gseq ~die in
                let full_config =
                  { config with Hidap.Config.incremental_eval = false }
                in
                let gc_before = Obs.Gcstats.snapshot () in
                Obs.Perf.reset Obs.Perf.global;
                Obs.Perf.set_enabled true;
                let full_run =
                  Fun.protect
                    ~finally:(fun () -> Obs.Perf.set_enabled false)
                    (fun () ->
                      Evalflow.run_flow Evalflow.HiDaP ~config:full_config ~flat
                        ~gseq ~ports ~die ())
                in
                let full_moves = Obs.Perf.get Obs.Perf.global Obs.Perf.sa_moves in
                let gc_full =
                  Obs.Gcstats.diff ~before:gc_before ~after:(Obs.Gcstats.snapshot ())
                in
                let inc_run =
                  List.find
                    (fun (r : Evalflow.run) -> r.Evalflow.kind = Evalflow.HiDaP)
                    res.Evalflow.runs
                in
                if full_run.Evalflow.macros <> inc_run.Evalflow.macros then begin
                  flush stdout;
                  Format.eprintf
                    "hidap bench: %s: incremental and full evaluation disagree on \
                     the macro placement@."
                    name;
                  exit 1
                end;
                let full_s = full_run.Evalflow.metrics.Evalflow.runtime_s in
                let inc_s = inc_run.Evalflow.metrics.Evalflow.runtime_s in
                Format.printf
                  "bench %s: incremental vs full evaluation: placements \
                   bit-identical, HiDaP leg %.2fs vs %.2fs full (%.1fx)@."
                  name inc_s full_s
                  (full_s /. Float.max 1e-9 inc_s);
                [ Qor.Speed.entry ~peak_rss_kb:(Obs.Gcstats.peak_rss_kb ())
                    ~major_words:gc_full.Obs.Gcstats.major_words
                    ~circuit:(name ^ "-full") ~wall_s:full_s ~sa_moves:full_moves () ]
              end
            in
            (records, entry :: extra))
        names
    in
    let records = List.concat_map fst per_circuit in
    let speed = { Qor.Speed.entries = List.concat_map snd per_circuit } in
    write_output "qor" qor_out (Qor.Record.ledger_json records);
    write_output "speed" speed_out (Qor.Speed.to_json speed);
    (* Speed comparison against the committed per-circuit baseline:
       report-only by design — wall-clock is machine-dependent, so it
       informs but never gates. *)
    if Sys.file_exists default_speed_baselines then begin
      match Qor.Speed.load default_speed_baselines with
      | Ok base ->
        print_string (Qor.Speed.render (Qor.Speed.compare_to ~baseline:base speed))
      | Error msg -> Format.eprintf "hidap: %s (speed comparison skipped)@." msg
    end;
    let baselines_path = Option.value ~default:default_baselines baselines in
    if update then begin
      Qor.Baseline.write baselines_path (Qor.Baseline.of_records records);
      Format.printf "wrote baselines %s (%d entries)@." baselines_path
        (List.length records);
      match report_out with
      | Some path ->
        Qor.Html.write_file path (Qor.Html.render ~title:"hidap bench" records);
        Format.printf "wrote report %s@." path
      | None -> ()
    end
    else
      match load_baselines ~required:true (Some baselines_path) with
      | None -> assert false
      | Some b ->
        let comparisons = Qor.Baseline.compare_all b records in
        print_string (Qor.Baseline.render comparisons);
        (match report_out with
        | Some path ->
          Qor.Html.write_file path
            (Qor.Html.render ~baseline:b ~title:"hidap bench" records);
          Format.printf "wrote report %s@." path
        | None -> ());
        if Qor.Baseline.overall comparisons = Qor.Baseline.Regressed then begin
          flush stdout;
          Format.eprintf "hidap bench: QoR regression beyond tolerance@.";
          exit 1
        end
  in
  let circuits_arg =
    Arg.(value & opt string "c1" & info [ "circuits" ] ~docv:"c1,c2"
           ~doc:"Comma-separated suite circuits to run (default c1).")
  in
  let update_arg =
    Arg.(value & flag & info [ "update-baselines" ]
           ~doc:"Regenerate the baselines file from this run instead of gating.")
  in
  let report_arg =
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"OUT.html"
           ~doc:"Also write a self-contained HTML report of the run.")
  in
  let speed_out_arg =
    Arg.(value & opt (some string) None & info [ "speed-out" ] ~docv:"OUT.json"
           ~doc:(Printf.sprintf
                   "Write per-circuit throughput (wall-clock, SA moves, \
                    moves/sec) as a hidap-speed JSON document. When %s exists \
                    a report-only comparison against it is printed (never a \
                    gate: wall-clock is machine-dependent)."
                   default_speed_baselines))
  in
  let check_incremental_arg =
    Arg.(value & flag & info [ "check-incremental" ]
           ~doc:"Re-run each circuit's HiDaP leg with the incremental SA \
                 evaluator forced off and fail unless the macro placements are \
                 bit-identical. The full leg's throughput is reported (and \
                 written to --speed-out) as \"<circuit>-full\".")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run suite circuits through all flows and gate QoR against baselines")
    Term.(const run $ circuits_arg $ baselines_arg $ update_arg $ jobs_arg $ qor_arg
          $ report_arg $ speed_out_arg $ check_incremental_arg)

(* ---- serve / submit / jobs ---------------------------------------- *)

let socket_arg =
  Arg.(value & opt string "hidap.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix socket path of the daemon. Keep it short: the OS caps \
               socket paths around 100 bytes.")

let connect_client socket =
  (* a daemon dying mid-conversation must surface as EPIPE on the next
     send (-> exit 7), not kill the client with SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  try Serve.Client.connect ~socket_path:socket
  with Unix.Unix_error (e, _, _) ->
    Format.eprintf "hidap: cannot connect to %s: %s (is 'hidap serve' running?)@."
      socket (Unix.error_message e);
    exit exit_daemon

(* A broken daemon conversation (refused, died mid-exchange) gets its
   own exit code so scripts can tell it from a failed job. *)
let client_error_code e fallback =
  if Serve.Client.is_conn e then exit_daemon else fallback

let serve_cmd =
  let run socket state_dir queue_limit workers drain_grace jobs retry_base
      retry_cap job_mem_mb job_cpu_s job_stall max_line_bytes =
    let faults =
      match Guard.Fault.of_env () with Ok s -> s | Error msg -> die_usage "%s" msg
    in
    if queue_limit < 1 then die_usage "--queue-limit must be at least 1";
    if workers < 1 then die_usage "--workers must be at least 1";
    (match job_mem_mb with
    | Some m when m < 16 -> die_usage "--job-mem-mb must be at least 16"
    | _ -> ());
    (match job_cpu_s with
    | Some s when s < 1 -> die_usage "--job-cpu-s must be at least 1"
    | _ -> ());
    if job_stall <= 0.0 then die_usage "--job-stall-s must be positive";
    if max_line_bytes < 1024 then die_usage "--max-line-bytes must be at least 1024";
    let cfg =
      { (Serve.Engine.default_config ~socket_path:socket ~state_dir) with
        Serve.Engine.queue_limit; workers; drain_grace_s = drain_grace;
        default_job_jobs = resolve_jobs jobs; retry_base_s = retry_base;
        retry_cap_s = retry_cap; job_mem_mb; job_cpu_s; stall_s = job_stall;
        max_line_bytes; faults }
    in
    let eng =
      try Serve.Engine.create cfg with
      | Unix.Unix_error (e, _, _) ->
        die_usage "cannot listen on %s: %s" socket (Unix.error_message e)
      | Guard.Diag.Fail d ->
        print_diag d;
        exit exit_daemon
    in
    let on_signal _ = Serve.Engine.request_drain eng in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Format.eprintf
      "hidap serve: listening on %s (state %s, queue limit %d, workers %d)@."
      socket state_dir queue_limit workers;
    Serve.Engine.run eng;
    Format.eprintf "hidap serve: drained@."
  in
  let state_dir_arg =
    Arg.(required & opt (some string) None & info [ "state-dir" ] ~docv:"DIR"
           ~doc:"Job state directory (created if needed). Every job persists \
                 its spec, state, checkpoints and results under DIR/jobs/<id>; \
                 restarting the daemon on the same DIR recovers in-flight jobs \
                 bit-identically.")
  in
  let queue_limit_arg =
    Arg.(value & opt int 8 & info [ "queue-limit" ] ~docv:"N"
           ~doc:"Admission bound: with N jobs queued, the next submit is \
                 rejected with a structured backpressure response (default 8).")
  in
  let drain_grace_arg =
    Arg.(value & opt float 5.0 & info [ "drain-grace" ] ~docv:"SECONDS"
           ~doc:"On drain (SIGTERM or a drain request), how long the in-flight \
                 job may keep running before it is asked to checkpoint and \
                 park (default 5).")
  in
  let retry_base_arg =
    Arg.(value & opt float 0.05 & info [ "retry-base" ] ~docv:"SECONDS"
           ~doc:"First retry backoff; doubles per attempt (deterministic, no \
                 jitter).")
  in
  let retry_cap_arg =
    Arg.(value & opt float 2.0 & info [ "retry-cap" ] ~docv:"SECONDS"
           ~doc:"Backoff ceiling.")
  in
  let workers_arg =
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker processes. Each job attempt runs in its own forked \
                 process, so N jobs run genuinely in parallel and a crashing \
                 or hung job can never take the daemon down (default 1).")
  in
  let job_mem_mb_arg =
    Arg.(value & opt (some int) None & info [ "job-mem-mb" ] ~docv:"MB"
           ~doc:"Per-job address-space limit (setrlimit, soft=hard). A worker \
                 exhausting it fails its job with an rlimit classification; \
                 exhaustion is deterministic, so the job is not retried.")
  in
  let job_cpu_s_arg =
    Arg.(value & opt (some int) None & info [ "job-cpu-s" ] ~docv:"SECONDS"
           ~doc:"Per-job CPU-time limit (setrlimit; the kernel delivers \
                 SIGXCPU at the soft limit). Same no-retry classification as \
                 --job-mem-mb.")
  in
  let job_stall_arg =
    Arg.(value & opt float 30.0 & info [ "job-stall-s" ] ~docv:"SECONDS"
           ~doc:"Hung-job watchdog: SIGKILL a worker whose progress pipe has \
                 been silent this long and retry its job. Workers heartbeat \
                 every 0.5s, so this catches wedged workers, not slow jobs \
                 (default 30).")
  in
  let max_line_bytes_arg =
    Arg.(value & opt int (1 lsl 20) & info [ "max-line-bytes" ] ~docv:"N"
           ~doc:"Request framing bound: a request line longer than N bytes is \
                 rejected and the connection dropped (default 1MiB).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the placement job daemon (crash-contained worker processes, \
             admission control, per-job rlimits and deadlines, hung-job \
             watchdog, retry, graceful drain, crash recovery)" ~exits)
    Term.(const run $ socket_arg $ state_dir_arg $ queue_limit_arg
          $ workers_arg $ drain_grace_arg $ jobs_arg $ retry_base_arg
          $ retry_cap_arg $ job_mem_mb_arg $ job_cpu_s_arg $ job_stall_arg
          $ max_line_bytes_arg)

let submit_cmd =
  let run socket file circuit seed lambda jobs priority deadline max_retries
      label watch wait result_out report_out =
    let spec =
      let base =
        { Serve.Proto.default_submit with
          Serve.Proto.seed; lambda; jobs; priority; deadline_s = deadline;
          max_retries; label }
      in
      match (file, circuit) with
      | Some path, None ->
        let hnl =
          match open_in_bin path with
          | ic ->
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s
          | exception Sys_error msg -> die_usage "%s" msg
        in
        { base with
          Serve.Proto.hnl = Some hnl;
          label =
            (if label <> "" then label
             else Filename.remove_extension (Filename.basename path)) }
      | None, Some name -> { base with Serve.Proto.circuit = Some name }
      | Some _, Some _ | None, None ->
        die_usage "give exactly one of FILE.hnl or --circuit"
    in
    let cl = connect_client socket in
    let fetch_outputs id =
      (match result_out with
      | None -> ()
      | Some path ->
        (match Serve.Client.result cl id with
        | Ok qor ->
          Obs.Jsonx.write_file path qor;
          Format.printf "wrote qor %s@." path
        | Error e ->
          Format.eprintf "hidap: result: %s@." (Serve.Client.error_message e)));
      match report_out with
      | None -> ()
      | Some path ->
        (match Serve.Client.report cl id with
        | Ok html ->
          let oc = open_out path in
          output_string oc html;
          close_out oc;
          Format.printf "wrote report %s@." path
        | Error e ->
          Format.eprintf "hidap: report: %s@." (Serve.Client.error_message e))
    in
    let finish (v : Serve.Proto.job_view) =
      Format.printf "job %s: %s%s@." v.Serve.Proto.id
        (Serve.Proto.state_to_string v.Serve.Proto.state)
        (if v.Serve.Proto.detail = "" then ""
         else " (" ^ v.Serve.Proto.detail ^ ")");
      if v.Serve.Proto.state = Serve.Proto.Done then fetch_outputs v.Serve.Proto.id;
      match v.Serve.Proto.state with
      | Serve.Proto.Done -> 0
      | Serve.Proto.Timed_out -> exit_budget
      | Serve.Proto.Parked -> exit_interrupted
      | _ -> 1
    in
    let code =
      match Serve.Client.submit cl spec with
      | Error e ->
        Format.eprintf "hidap: submit: %s@." (Serve.Client.error_message e);
        client_error_code e exit_invalid
      | Ok (`Rejected (reason, depth, limit)) ->
        Format.eprintf "hidap: submit rejected: %s (queue %d/%d)@." reason depth
          limit;
        1
      | Ok (`Accepted (id, depth)) ->
        Format.printf "accepted %s (queue depth %d)@." id depth;
        if watch then begin
          match
            Serve.Client.watch cl id ~on_event:(fun e ->
                Format.eprintf "%s@." (Obs.Jsonx.to_string ~compact:true e))
          with
          | Ok v -> finish v
          | Error e ->
            Format.eprintf "hidap: watch: %s@." (Serve.Client.error_message e);
            client_error_code e 1
        end
        else if wait then begin
          match Serve.Client.wait cl id with
          | Ok v -> finish v
          | Error e ->
            Format.eprintf "hidap: wait: %s@." (Serve.Client.error_message e);
            client_error_code e 1
        end
        else 0
    in
    Serve.Client.close cl;
    if code <> 0 then exit code
  in
  let priority_arg =
    Arg.(value & opt int 0 & info [ "priority" ] ~docv:"N"
           ~doc:"Queue priority: higher runs first, FIFO within a priority \
                 (default 0).")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Per-attempt wall-clock deadline. A job past it lands in the \
                 timed-out terminal state without harming other jobs.")
  in
  let max_retries_arg =
    Arg.(value & opt int 0 & info [ "max-retries" ] ~docv:"N"
           ~doc:"Extra attempts after a transient failure, re-queued with \
                 deterministic capped exponential backoff (default 0).")
  in
  let label_arg =
    Arg.(value & opt string "" & info [ "label" ] ~docv:"NAME"
           ~doc:"Job label shown by 'hidap jobs' (default: the file name).")
  in
  let watch_flag =
    Arg.(value & flag & info [ "watch" ]
           ~doc:"Stream the job's progress events to stderr until it finishes; \
                 the exit code reflects the terminal state.")
  in
  let wait_flag =
    Arg.(value & flag & info [ "wait" ]
           ~doc:"Block until the job reaches a terminal state (without \
                 streaming progress).")
  in
  let result_out_arg =
    Arg.(value & opt (some string) None & info [ "result-out" ] ~docv:"OUT.json"
           ~doc:"With --watch/--wait: download the finished job's QoR ledger.")
  in
  let report_out_arg =
    Arg.(value & opt (some string) None & info [ "report-out" ] ~docv:"OUT.html"
           ~doc:"With --watch/--wait: download the finished job's HTML report.")
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a placement job to a running daemon" ~exits)
    Term.(const run $ socket_arg $ file_arg $ circuit_arg $ seed_arg $ lambda_arg
          $ jobs_arg $ priority_arg $ deadline_arg $ max_retries_arg $ label_arg
          $ watch_flag $ wait_flag $ result_out_arg $ report_out_arg)

let jobs_cmd =
  let run socket stats status result report output drain =
    let cl = connect_client socket in
    let code =
      match (status, result, report, stats, drain) with
      | Some id, None, None, false, false ->
        (match Serve.Client.status cl id with
        | Ok v ->
          Format.printf "%s  %-9s  attempts %d  priority %d  %s%s@."
            v.Serve.Proto.id
            (Serve.Proto.state_to_string v.Serve.Proto.state)
            v.Serve.Proto.attempts v.Serve.Proto.priority v.Serve.Proto.label
            (if v.Serve.Proto.detail = "" then ""
             else "  — " ^ v.Serve.Proto.detail);
          0
        | Error e ->
          Format.eprintf "hidap: %s@." (Serve.Client.error_message e);
          client_error_code e 1)
      | None, Some id, None, false, false ->
        (match Serve.Client.result cl id with
        | Ok qor ->
          (match output with
          | Some path ->
            Obs.Jsonx.write_file path qor;
            Format.printf "wrote qor %s@." path
          | None -> print_endline (Obs.Jsonx.to_string qor));
          0
        | Error e ->
          Format.eprintf "hidap: %s@." (Serve.Client.error_message e);
          client_error_code e 1)
      | None, None, Some id, false, false ->
        (match Serve.Client.report cl id with
        | Ok html ->
          (match output with
          | Some path ->
            let oc = open_out path in
            output_string oc html;
            close_out oc;
            Format.printf "wrote report %s@." path
          | None -> print_string html);
          0
        | Error e ->
          Format.eprintf "hidap: %s@." (Serve.Client.error_message e);
          client_error_code e 1)
      | None, None, None, true, false ->
        (match Serve.Client.stats cl with
        | Ok s ->
          Format.printf
            "queue %d/%d%s@.accepted %d  completed %d  failed %d  timed-out %d  \
             parked %d  retried %d  worker-lost %d@.rejected: backpressure %d, \
             draining %d@."
            s.Serve.Proto.queue_depth s.Serve.Proto.queue_limit
            (if s.Serve.Proto.draining then "  (draining)" else "")
            s.Serve.Proto.accepted s.Serve.Proto.completed s.Serve.Proto.failed
            s.Serve.Proto.timed_out s.Serve.Proto.parked s.Serve.Proto.retried
            s.Serve.Proto.worker_lost s.Serve.Proto.rejected_backpressure
            s.Serve.Proto.rejected_draining;
          List.iter
            (fun (w : Serve.Proto.worker_view) ->
              match (w.Serve.Proto.pid, w.Serve.Proto.job) with
              | Some pid, Some job ->
                Format.printf "worker %d  pid %d  %s  %.1fs@." w.Serve.Proto.slot
                  pid job w.Serve.Proto.elapsed_s
              | _ -> Format.printf "worker %d  idle@." w.Serve.Proto.slot)
            s.Serve.Proto.workers;
          0
        | Error e ->
          Format.eprintf "hidap: %s@." (Serve.Client.error_message e);
          client_error_code e 1)
      | None, None, None, false, true ->
        (match Serve.Client.drain cl with
        | Ok () ->
          Format.printf "drain requested@.";
          0
        | Error e ->
          Format.eprintf "hidap: %s@." (Serve.Client.error_message e);
          client_error_code e 1)
      | None, None, None, false, false ->
        (match Serve.Client.list cl with
        | Ok [] ->
          Format.printf "no jobs@.";
          0
        | Ok vs ->
          List.iter
            (fun (v : Serve.Proto.job_view) ->
              Format.printf "%s  %-9s  attempts %d  priority %d  %s%s@."
                v.Serve.Proto.id
                (Serve.Proto.state_to_string v.Serve.Proto.state)
                v.Serve.Proto.attempts v.Serve.Proto.priority v.Serve.Proto.label
                (if v.Serve.Proto.detail = "" then ""
                 else "  — " ^ v.Serve.Proto.detail))
            vs;
          0
        | Error e ->
          Format.eprintf "hidap: %s@." (Serve.Client.error_message e);
          client_error_code e 1)
      | _ -> die_usage "give at most one of --status, --result, --report, --stats, --drain"
    in
    Serve.Client.close cl;
    if code <> 0 then exit code
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print daemon statistics.")
  in
  let status_arg =
    Arg.(value & opt (some string) None & info [ "status" ] ~docv:"ID"
           ~doc:"Print one job's state.")
  in
  let result_arg =
    Arg.(value & opt (some string) None & info [ "result" ] ~docv:"ID"
           ~doc:"Fetch a completed job's QoR ledger.")
  in
  let report_arg =
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"ID"
           ~doc:"Fetch a completed job's HTML report.")
  in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT"
           ~doc:"Write --result/--report output to a file instead of stdout.")
  in
  let drain_flag =
    Arg.(value & flag & info [ "drain" ]
           ~doc:"Ask the daemon to drain: stop accepting jobs, finish or park \
                 the in-flight one, and exit 0.")
  in
  Cmd.v
    (Cmd.info "jobs" ~doc:"List and query a running daemon's jobs" ~exits)
    Term.(const run $ socket_arg $ stats_flag $ status_arg $ result_arg
          $ report_arg $ output_arg $ drain_flag)

(* ---- ckpt --------------------------------------------------------- *)

let ckpt_cmd =
  let dir_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Checkpoint directory (as given to 'place --checkpoint-dir').")
  in
  let open_store ?keep dir =
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      die_usage "%s is not a directory" dir;
    match Ckpt.Store.open_ ?keep ~fresh:false dir with
    | Ok s -> s
    | Error msg ->
      Format.eprintf "hidap: %s: %s@." dir msg;
      exit exit_invalid
  in
  let describe store (e : Ckpt.Store.entry) =
    match Ckpt.Store.read_entry store e with
    | Ok st ->
      Printf.sprintf "ok    %d instance(s)%s%s"
        (List.length st.Ckpt.State.instances)
        (if st.Ckpt.State.flip <> None then ", flip" else "")
        (match st.Ckpt.State.stages with
        | [] -> ""
        | l -> ", stages " ^ String.concat "+" l)
    | Error msg -> "BAD   " ^ msg
  in
  let ls_cmd =
    let run dir =
      let store = open_store dir in
      let entries = Ckpt.Store.entries store in
      if entries = [] then Format.printf "no snapshots in %s@." dir
      else
        List.iter
          (fun (e : Ckpt.Store.entry) ->
            Format.printf "%s  %s  %s@." e.Ckpt.Store.file
              (if e.Ckpt.Store.stage then "stage" else "     ")
              (describe store e))
          entries
    in
    Cmd.v
      (Cmd.info "ls" ~doc:"List the snapshots of a checkpoint directory" ~exits)
      Term.(const run $ dir_pos)
  in
  let inspect_cmd =
    let run dir seq =
      let store = open_store dir in
      let entries = Ckpt.Store.entries store in
      let entry =
        match seq with
        | None ->
          (match List.rev entries with
          | [] ->
            Format.eprintf "hidap: %s: no snapshots@." dir;
            exit exit_invalid
          | e :: _ -> e)
        | Some n ->
          (match
             List.find_opt (fun (e : Ckpt.Store.entry) -> e.Ckpt.Store.seq = n) entries
           with
          | Some e -> e
          | None ->
            Format.eprintf "hidap: %s: no snapshot with sequence %d@." dir n;
            exit exit_invalid)
      in
      match Ckpt.Store.read_entry store entry with
      | Error msg ->
        Format.eprintf "hidap: %s: %s@." entry.Ckpt.Store.file msg;
        exit exit_invalid
      | Ok st -> print_endline (Obs.Jsonx.to_string (Ckpt.State.to_json st))
    in
    let seq_arg =
      Arg.(value & opt (some int) None & info [ "seq" ] ~docv:"N"
             ~doc:"Snapshot sequence number (default: the newest).")
    in
    Cmd.v
      (Cmd.info "inspect" ~doc:"Decode one snapshot and print it as JSON" ~exits)
      Term.(const run $ dir_pos $ seq_arg)
  in
  let gc_cmd =
    let run dir keep =
      let store = open_store ?keep dir in
      let removed = Ckpt.Store.gc ?keep store in
      Format.printf "removed %d file(s)@." (List.length removed);
      List.iter print_endline removed
    in
    let keep_arg =
      Arg.(value & opt (some int) None & info [ "keep" ] ~docv:"K"
             ~doc:"Retention window to apply (default: the store's own, 4). \
                   Stage-boundary snapshots are always kept.")
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Apply retention and delete unreferenced snapshot files" ~exits)
      Term.(const run $ dir_pos $ keep_arg)
  in
  Cmd.group
    (Cmd.info "ckpt" ~doc:"Inspect and maintain checkpoint directories" ~exits)
    [ ls_cmd; inspect_cmd; gc_cmd ]

let () =
  let info =
    Cmd.info "hidap" ~version:"1.0.0"
      ~doc:"RTL-aware dataflow-driven macro placement (DATE 2019 reproduction)"
      ~exits
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ stats_cmd; place_cmd; eval_cmd; check_cmd; gen_cmd; view_cmd; report_cmd;
            explain_cmd; diff_cmd; bench_cmd; ckpt_cmd; serve_cmd; submit_cmd;
            jobs_cmd ]))
