(* The HNL text format: parse a hand-written hierarchical netlist, run
   it through elaboration and the placer, and print it back.

   Run with: dune exec examples/hnl_roundtrip.exe *)

let source = {|
# A toy SoC: two memory channels behind a shared crossbar.
design soc

module channel {
  input in_0
  input in_1
  output out_0
  output out_1
  macro ram size 48 32 (in d_0 d_1 ; out q_0 q_1)
  flop pipe_0 (in in_0 ; out d_0)
  flop pipe_1 (in in_1 ; out d_1)
  comb mix_0 (in q_0 q_1 ; out out_0)
  comb mix_1 area 2.5 (in q_1 ; out out_1)
}

module soc {
  input data_0
  input data_1
  output result_0
  output result_1
  comb split_0 (in data_0 ; out a_0)
  comb split_1 (in data_1 ; out a_1)
  inst ch0 : channel (in_0 => a_0, in_1 => a_1, out_0 => b_0, out_1 => b_1)
  inst ch1 : channel (in_0 => b_0, in_1 => b_1, out_0 => result_0, out_1 => result_1)
}
|}

let () =
  let design =
    match Hnl.Parser.parse_string source with
    | Ok d -> d
    | Error { Hnl.Parser.line; col; message } ->
      Format.eprintf "parse error at line %d, column %d: %s@." line col message;
      exit 1
  in
  Format.printf "parsed %d modules, top = %s@." (Netlist.Design.module_count design)
    design.Netlist.Design.top;
  (* Round trip: print and re-parse. *)
  let text = Hnl.Printer.to_string design in
  (match Hnl.Parser.parse_string text with
  | Ok d2 when d2 = design -> print_endline "round-trip: identical"
  | Ok _ -> print_endline "round-trip: parsed but differs (bug!)"
  | Error _ -> print_endline "round-trip: failed to re-parse (bug!)");
  (* Elaborate and place. *)
  let flat = Netlist.Flat.elaborate design in
  Format.printf "%a@." Netlist.Flat.pp_summary flat;
  let r = Hidap.place flat in
  List.iter
    (fun (p : Hidap.macro_placement) ->
      Format.printf "  %s placed at %a %s@."
        flat.Netlist.Flat.nodes.(p.Hidap.fid).Netlist.Flat.path Geom.Rect.pp p.Hidap.rect
        (Geom.Orientation.to_string p.Hidap.orient))
    r.Hidap.placements;
  print_string
    (Viz.Ascii.floorplan ~die:r.Hidap.die
       ~rects:(List.map (fun (p : Hidap.macro_placement) -> ("M", p.Hidap.rect)) r.Hidap.placements)
       ~width:40 ~height:16 ())
