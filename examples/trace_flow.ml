(* Trace a full HiDaP run: enable the span recorder and the metrics
   registry, place suite circuit c1', then print the stage tree and the
   per-level SA convergence telemetry, and export both as JSON.

   Run with: dune exec examples/trace_flow.exe

   Output files (written to the current directory):
     trace_c1.json   - Chrome trace (load in chrome://tracing or Perfetto)
     metrics_c1.json - metrics registry dump (counters/gauges/histograms/series)

   The same instrumentation backs `hidap place --trace/--metrics/--profile`;
   this example shows how to drive it from the library API. *)

let () =
  let c =
    match Circuitgen.Suite.find "c1" with Some c -> c | None -> assert false
  in
  let flat =
    Netlist.Flat.elaborate (Circuitgen.Gen.generate c.Circuitgen.Suite.params)
  in

  (* 1. Turn observability on. Both sinks are global and off by default,
     so library code pays nothing until this point. *)
  Obs.Metrics.reset Obs.Metrics.global;
  Obs.Metrics.set_enabled true;
  Obs.Trace.start ();

  (* 2. Run the flow exactly as usual - the stages instrument themselves. *)
  let result = Hidap.place flat in

  (* 3. Collect. [finish] returns the completed span forest. *)
  let spans = Obs.Trace.finish () in
  Obs.Metrics.set_enabled false;

  Format.printf "placed %d macros on c1' (lambda=%.1f)@.@."
    (List.length result.Hidap.placements)
    result.Hidap.lambda;

  (* 4. Human-readable stage tree (what --profile prints to stderr). *)
  print_string (Obs.Trace.summary spans);

  (* 5. SA convergence telemetry recorded by the plateau observer. *)
  Format.printf "@.SA acceptance by recursion level:@.";
  List.iter
    (fun name ->
      let samples = Obs.Metrics.hist_samples Obs.Metrics.global name in
      let prefix = "sa.acceptance.level" in
      if
        String.length name >= String.length prefix
        && String.sub name 0 (String.length prefix) = prefix
        && samples <> []
      then
        Format.printf "  %s: %d plateaus, mean %.3f, p90 %.3f@." name
          (List.length samples) (Util.Stat.mean samples)
          (Obs.Metrics.percentile samples ~p:90.0))
    (Obs.Metrics.names Obs.Metrics.global);

  (* 6. Export both views as JSON. *)
  Obs.Trace.write_chrome_file "trace_c1.json" spans;
  Obs.Jsonx.write_file "metrics_c1.json" (Obs.Metrics.to_json Obs.Metrics.global);
  Format.printf "@.wrote trace_c1.json and metrics_c1.json@."
