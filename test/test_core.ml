(* Tests for the HiDaP core: shape curves SGamma, port plan, target-area
   assignment, layout generation, the recursive floorplan, flipping, and
   the end-to-end flow. *)

module Flat = Netlist.Flat
module Tree = Hier.Tree
module Rect = Geom.Rect
module Point = Geom.Point
module O = Geom.Orientation

let check_float = Alcotest.(check (float 1e-6))

let fig1_flat = lazy (Flat.elaborate (Circuitgen.Suite.fig1_design ()))

let fig1_placed = lazy (Hidap.place (Lazy.force fig1_flat))

(* ---- config ------------------------------------------------------- *)

let test_config_defaults () =
  let c = Hidap.Config.default in
  Alcotest.(check (list (float 1e-9))) "paper lambda sweep" [ 0.2; 0.5; 0.8 ]
    c.Hidap.Config.lambda_sweep;
  check_float "open frac 40%" 0.40 c.Hidap.Config.open_frac;
  check_float "min frac 1%" 0.01 c.Hidap.Config.min_frac;
  let c' = Hidap.Config.with_lambda c 0.3 in
  Alcotest.(check (list (float 1e-9))) "with_lambda collapses sweep" [ 0.3 ]
    c'.Hidap.Config.lambda_sweep

(* ---- die sizing --------------------------------------------------- *)

let test_die_for () =
  let flat = Lazy.force fig1_flat in
  let config = Hidap.Config.default in
  let die = Hidap.die_for flat ~config in
  check_float "utilization honoured"
    (Flat.total_cell_area flat /. config.Hidap.Config.utilization)
    (Rect.area die);
  check_float "square by default" 1.0 (Rect.aspect_ratio die)

(* ---- port plan ---------------------------------------------------- *)

let test_port_plan () =
  let flat = Lazy.force fig1_flat in
  let gseq = Seqgraph.build flat in
  let die = Hidap.die_for flat ~config:Hidap.Config.default in
  let plan = Hidap.Port_plan.make gseq ~die in
  let nodes = Hidap.Port_plan.port_nodes plan in
  Alcotest.(check bool) "has port arrays" true (nodes <> []);
  List.iter
    (fun gid ->
      match Hidap.Port_plan.gseq_pos plan gid with
      | None -> Alcotest.fail "port without position"
      | Some p ->
        let on_boundary =
          abs_float (p.Point.x -. die.Rect.x) < 1e-6
          || abs_float (p.Point.x -. (die.Rect.x +. die.Rect.w)) < 1e-6
          || abs_float (p.Point.y -. die.Rect.y) < 1e-6
          || abs_float (p.Point.y -. (die.Rect.y +. die.Rect.h)) < 1e-6
        in
        Alcotest.(check bool) "on die boundary" true on_boundary)
    nodes;
  (* flat ports inherit their array's position *)
  Array.iter
    (fun (n : Flat.node) ->
      if Flat.is_port n then
        Alcotest.(check bool) "flat port has a position" true
          (Hidap.Port_plan.flat_pos plan n.Flat.id <> None))
    flat.Flat.nodes

let test_port_plan_deterministic () =
  let flat = Lazy.force fig1_flat in
  let gseq = Seqgraph.build flat in
  let die = Hidap.die_for flat ~config:Hidap.Config.default in
  let p1 = Hidap.Port_plan.make gseq ~die and p2 = Hidap.Port_plan.make gseq ~die in
  Alcotest.(check (list int)) "same order" (Hidap.Port_plan.port_nodes p1)
    (Hidap.Port_plan.port_nodes p2)

(* ---- shape curves -------------------------------------------------- *)

let test_sgamma_leaves () =
  let flat = Lazy.force fig1_flat in
  let tree = Tree.build flat in
  let sg =
    Hidap.Shape_curves.generate tree ~config:Hidap.Config.default ~rng:(Util.Rng.create 2)
  in
  Array.iter
    (fun (n : Flat.node) ->
      if Flat.is_macro n then begin
        let ht = Tree.ht_node_of_flat tree n.Flat.id in
        let c = Hidap.Shape_curves.curve sg ht in
        (match n.Flat.kind with
        | Flat.Kmacro info ->
          Alcotest.(check bool) "leaf curve fits macro" true
            (Shape.Curve.fits c ~w:info.Netlist.Design.mw ~h:info.Netlist.Design.mh);
          check_float "leaf macro area" (info.Netlist.Design.mw *. info.Netlist.Design.mh)
            (Hidap.Shape_curves.macro_area sg ht)
        | _ -> assert false)
      end)
    flat.Flat.nodes

let test_sgamma_packing_quality () =
  let flat = Lazy.force fig1_flat in
  let tree = Tree.build flat in
  let sg =
    Hidap.Shape_curves.generate tree ~config:Hidap.Config.default ~rng:(Util.Rng.create 2)
  in
  for id = 0 to Tree.node_count tree - 1 do
    if Tree.macro_count tree id > 0 then begin
      let c = Hidap.Shape_curves.curve sg id in
      let ma = Hidap.Shape_curves.macro_area sg id in
      Alcotest.(check bool) "constrained" false (Shape.Curve.is_unconstrained c);
      (* a slicing packing wastes some area but must hold all macros *)
      Alcotest.(check bool) "min area >= macro area" true
        (Shape.Curve.min_area c >= ma -. 1e-6);
      Alcotest.(check bool) "packing efficiency > 0.5" true
        (ma /. Shape.Curve.min_area c > 0.5)
    end
    else
      Alcotest.(check bool) "macro-free nodes unconstrained" true
        (Shape.Curve.is_unconstrained (Hidap.Shape_curves.curve sg id))
  done

(* ---- target area --------------------------------------------------- *)

let test_target_area () =
  let flat = Lazy.force fig1_flat in
  let tree = Tree.build flat in
  let root = Tree.root tree in
  let dc = Hier.Decluster.run tree ~nh:root ~open_frac:0.4 ~min_frac:0.01 in
  let sg =
    Hidap.Shape_curves.generate tree ~config:Hidap.Config.default ~rng:(Util.Rng.create 2)
  in
  let blocks =
    Hidap.Target_area.assign tree ~sgamma:sg ~hcb:dc.Hier.Decluster.hcb
      ~hcg:dc.Hier.Decluster.hcg
  in
  Array.iter
    (fun (b : Hidap.Block.t) ->
      Alcotest.(check bool) "at >= am" true (b.Hidap.Block.at >= b.Hidap.Block.am -. 1e-9))
    blocks;
  let at_sum = Array.fold_left (fun a (b : Hidap.Block.t) -> a +. b.Hidap.Block.at) 0.0 blocks in
  check_float "at sums to the whole instance area" (Tree.area tree root) at_sum

(* ---- layout generation --------------------------------------------- *)

let test_layout_gen_single_block () =
  let budget = Rect.make ~x:0.0 ~y:0.0 ~w:10.0 ~h:10.0 in
  let blocks =
    [| { Hidap.Block.idx = 0; ht_id = 0; name = "b"; curve = Shape.Curve.unconstrained;
         am = 50.0; at = 80.0; macro_count = 0 } |]
  in
  let r =
    Hidap.Layout_gen.run ~rng:(Util.Rng.create 1) ~config:Hidap.Config.default ~blocks
      ~affinity:(Array.make_matrix 1 1 0.0) ~fixed_pos:[||] ~budget ()
  in
  Alcotest.(check bool) "single block takes the budget" true
    (Rect.equal r.Hidap.Layout_gen.rects.(0) budget)

let test_layout_gen_single_block_penalized () =
  (* A lone block violating its budget must pay the same graded penalty
     as the multi-block path, not report a free cost of zero. *)
  let budget = Rect.make ~x:0.0 ~y:0.0 ~w:10.0 ~h:10.0 in
  let blocks am =
    [| { Hidap.Block.idx = 0; ht_id = 0; name = "b"; curve = Shape.Curve.unconstrained;
         am; at = am; macro_count = 0 } |]
  in
  let run blocks =
    Hidap.Layout_gen.run ~rng:(Util.Rng.create 1) ~config:Hidap.Config.default ~blocks
      ~affinity:(Array.make_matrix 1 1 0.0) ~fixed_pos:[||] ~budget ()
  in
  let ok = run (blocks 50.0) in
  let bad = run (blocks 150.0) in
  Alcotest.(check bool) "violating block pays a penalty" true
    (bad.Hidap.Layout_gen.cost > ok.Hidap.Layout_gen.cost);
  Alcotest.(check bool) "am deficit recorded" true
    (bad.Hidap.Layout_gen.viol.Slicing.Layout.am_deficit > 0.0);
  Alcotest.(check int) "no search for one block" 0 bad.Hidap.Layout_gen.sa_moves

let test_layout_gen_affinity_pulls_together () =
  (* 4 blocks; 0 and 3 strongly connected: they should end up closer than
     the average pair *)
  let budget = Rect.make ~x:0.0 ~y:0.0 ~w:20.0 ~h:20.0 in
  let mk i =
    { Hidap.Block.idx = i; ht_id = i; name = Printf.sprintf "b%d" i;
      curve = Shape.Curve.unconstrained; am = 100.0; at = 100.0; macro_count = 0 }
  in
  let blocks = Array.init 4 mk in
  let aff = Array.make_matrix 4 4 0.0 in
  aff.(0).(3) <- 1.0;
  aff.(3).(0) <- 1.0;
  let r =
    Hidap.Layout_gen.run ~rng:(Util.Rng.create 3) ~config:Hidap.Config.default ~blocks
      ~affinity:aff ~fixed_pos:[||] ~budget ()
  in
  let c i = Rect.center r.Hidap.Layout_gen.rects.(i) in
  let d03 = Point.manhattan (c 0) (c 3) in
  let dmax = 20.0 in
  Alcotest.(check bool) "connected pair is adjacent" true (d03 <= dmax /. 2.0)

(* ---- full flow ------------------------------------------------------ *)

let test_place_fig1_legal () =
  let r = Lazy.force fig1_placed in
  Alcotest.(check int) "all macros placed" 16 (List.length r.Hidap.placements);
  check_float "no overlap" 0.0 (Hidap.overlap_area r);
  Alcotest.(check bool) "inside the die" true (Hidap.placement_bbox_ok r)

let test_place_fig1_structure () =
  let r = Lazy.force fig1_placed in
  (* top level must be the Fig 1a structure: two 8-macro blocks *)
  (match r.Hidap.top with
  | None -> Alcotest.fail "no top snapshot"
  | Some top ->
    let macro_blocks =
      Array.to_list top.Hidap.Floorplan.inst_blocks
      |> List.filter (fun (b : Hidap.Block.t) -> b.Hidap.Block.macro_count > 0)
    in
    Alcotest.(check (list int)) "two 8-macro blocks" [ 8; 8 ]
      (List.map (fun (b : Hidap.Block.t) -> b.Hidap.Block.macro_count) macro_blocks));
  (* macros of the same subsystem stay together: max intra-subsystem
     distance should be below the die diagonal *)
  let flat = Lazy.force fig1_flat in
  let subsystem fid = List.hd (Util.Names.split_path flat.Flat.nodes.(fid).Flat.path) in
  let groups = Hashtbl.create 2 in
  List.iter
    (fun (p : Hidap.macro_placement) ->
      let key = subsystem p.Hidap.fid in
      Hashtbl.replace groups key
        (Rect.center p.Hidap.rect
        :: (try Hashtbl.find groups key with Not_found -> [])))
    r.Hidap.placements;
  Alcotest.(check int) "two subsystems" 2 (Hashtbl.length groups);
  Hashtbl.iter
    (fun _ pts ->
      let spread =
        List.fold_left
          (fun acc p -> List.fold_left (fun acc q -> max acc (Point.manhattan p q)) acc pts)
          0.0 pts
      in
      Alcotest.(check bool) "subsystem stays clustered" true
        (spread < 0.9 *. (r.Hidap.die.Rect.w +. r.Hidap.die.Rect.h)))
    groups

let test_place_deterministic () =
  let flat = Lazy.force fig1_flat in
  let r1 = Hidap.place flat and r2 = Hidap.place flat in
  List.iter2
    (fun (a : Hidap.macro_placement) (b : Hidap.macro_placement) ->
      Alcotest.(check int) "same macro" a.Hidap.fid b.Hidap.fid;
      Alcotest.(check bool) "same rect" true (Rect.equal a.Hidap.rect b.Hidap.rect);
      Alcotest.(check bool) "same orientation" true (a.Hidap.orient = b.Hidap.orient))
    r1.Hidap.placements r2.Hidap.placements

let test_place_lambda_changes_result () =
  (* On fig1 the optimizer is stable across seeds (the affinity-greedy
     start dominates), but the dataflow blend must matter: macro-flow-only
     and block-flow-only affinities give different layouts. *)
  let flat = Lazy.force fig1_flat in
  let r1 = Lazy.force fig1_placed in
  let r2 = Hidap.place ~config:(Hidap.Config.with_lambda Hidap.Config.default 0.0) flat in
  let rects r = List.map (fun (p : Hidap.macro_placement) -> p.Hidap.rect) r.Hidap.placements in
  Alcotest.(check bool) "lambda changes the layout" false (rects r1 = rects r2)

let test_place_levels_recorded () =
  let r = Lazy.force fig1_placed in
  let depths =
    List.map (fun (l : Hidap.Floorplan.level_info) -> l.Hidap.Floorplan.depth) r.Hidap.levels
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "multi-level recursion" true (List.length depths >= 2);
  (* every level rect sits inside the die *)
  List.iter
    (fun (l : Hidap.Floorplan.level_info) ->
      Alcotest.(check bool) "level rect inside die" true
        (Rect.contains_rect ~outer:r.Hidap.die ~inner:l.Hidap.Floorplan.rect))
    r.Hidap.levels

let test_place_sweep () =
  let flat = Lazy.force fig1_flat in
  (* objective: macro bbox area (cheap proxy) *)
  let objective (r : Hidap.result) =
    List.fold_left
      (fun acc (p : Hidap.macro_placement) -> acc +. Rect.area p.Hidap.rect)
      0.0 r.Hidap.placements
  in
  let sw = Hidap.place_sweep ~objective flat in
  let best = sw.Hidap.best in
  Alcotest.(check bool) "lambda from sweep" true
    (List.mem best.Hidap.lambda Hidap.Config.default.Hidap.Config.lambda_sweep);
  check_float "objective consistent" (objective best) sw.Hidap.best_objective;
  (* every λ of the sweep is recorded, losing runs included *)
  Alcotest.(check (list (float 0.0)))
    "sweep trace covers the whole sweep"
    Hidap.Config.default.Hidap.Config.lambda_sweep
    (List.map fst sw.Hidap.sweep_trace);
  List.iter
    (fun (_, o) ->
      Alcotest.(check bool) "best objective is minimal" true
        (sw.Hidap.best_objective <= o))
    sw.Hidap.sweep_trace

let test_place_sweep_parallel_deterministic () =
  (* The tentpole contract: a sweep fanned across worker domains is
     bit-identical to the sequential one for a fixed seed. *)
  let flat = Lazy.force fig1_flat in
  let objective (r : Hidap.result) =
    List.fold_left
      (fun acc (p : Hidap.macro_placement) ->
        acc +. Point.manhattan (Rect.center p.Hidap.rect) (Rect.center r.Hidap.die))
      0.0 r.Hidap.placements
  in
  let run jobs =
    Hidap.place_sweep
      ~config:{ Hidap.Config.default with Hidap.Config.jobs }
      ~objective flat
  in
  let s1 = run 1 and s2 = run 2 in
  Alcotest.(check (float 0.0)) "same best objective" s1.Hidap.best_objective
    s2.Hidap.best_objective;
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "same sweep trace" s1.Hidap.sweep_trace s2.Hidap.sweep_trace;
  Alcotest.(check (float 0.0)) "same best lambda" s1.Hidap.best.Hidap.lambda
    s2.Hidap.best.Hidap.lambda;
  List.iter2
    (fun (a : Hidap.macro_placement) (b : Hidap.macro_placement) ->
      Alcotest.(check int) "same macro" a.Hidap.fid b.Hidap.fid;
      Alcotest.(check bool) "bit-identical rect" true (a.Hidap.rect = b.Hidap.rect);
      Alcotest.(check bool) "same orientation" true (a.Hidap.orient = b.Hidap.orient))
    s1.Hidap.best.Hidap.placements s2.Hidap.best.Hidap.placements

(* ---- rotated-macro orientation -------------------------------------- *)

let test_oriented_fit () =
  let rect = Rect.make ~x:0.0 ~y:0.0 ~w:12.0 ~h:45.0 in
  (* upright 40x10 exceeds the 12-wide rect; rotated it fits exactly *)
  let w, h, o = Hidap.Floorplan.oriented_fit ~w:40.0 ~h:10.0 ~rect in
  check_float "rotated width" 10.0 w;
  check_float "rotated height" 40.0 h;
  Alcotest.(check bool) "reports R90" true (o = O.R90);
  (* an upright fit never rotates *)
  let w, h, o = Hidap.Floorplan.oriented_fit ~w:10.0 ~h:40.0 ~rect in
  check_float "upright width" 10.0 w;
  check_float "upright height" 40.0 h;
  Alcotest.(check bool) "keeps R0" true (o = O.R0);
  (* neither way fits: clamp to the rect at R0 *)
  let w, h, o = Hidap.Floorplan.oriented_fit ~w:50.0 ~h:50.0 ~rect in
  Alcotest.(check bool) "clamps at R0" true
    (o = O.R0 && w <= 12.0 +. 1e-9 && h <= 45.0 +. 1e-9)

let macro_dims flat fid =
  match flat.Flat.nodes.(fid).Flat.kind with
  | Flat.Kmacro info -> (info.Netlist.Design.mw, info.Netlist.Design.mh)
  | Flat.Kflop | Flat.Kcomb | Flat.Kport _ -> Alcotest.fail "not a macro"

(* Invariant: every placed rect's footprint is bounded by the macro's
   library dimensions under the reported orientation. *)
let check_orientation_consistent flat (r : Hidap.result) =
  List.iter
    (fun (p : Hidap.macro_placement) ->
      let mw, mh = macro_dims flat p.Hidap.fid in
      let ow, oh = O.apply_dims p.Hidap.orient ~w:mw ~h:mh in
      Alcotest.(check bool)
        (Printf.sprintf "macro %d footprint matches its orientation" p.Hidap.fid)
        true
        (p.Hidap.rect.Rect.w <= ow +. 1e-6 && p.Hidap.rect.Rect.h <= oh +. 1e-6))
    r.Hidap.placements

(* Two instances of a block holding one wide 40x6 macro, chained through
   top-level nets; placed into a die only 30 wide so the macros cannot
   stand upright. *)
let wide_macro_design () =
  let module D = Netlist.Design in
  let bits p = List.init 4 (fun i -> Printf.sprintf "%s_%d" p i) in
  let blockm name =
    let cells =
      D.cell ~name:"mem" ~kind:(D.make_macro ~w:40.0 ~h:6.0) ~ins:(bits "in")
        ~outs:(bits "q") ()
      :: List.init 4 (fun i ->
             D.cell ~name:(Printf.sprintf "ro_%d" i) ~kind:D.Flop
               ~ins:[ Printf.sprintf "q_%d" i ]
               ~outs:[ Printf.sprintf "out_%d" i ] ())
    in
    let ports =
      List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "in")
      @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bits "out")
    in
    D.module_def ~name ~ports ~cells ()
  in
  let top =
    D.module_def ~name:"top"
      ~ports:
        (List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "pin")
        @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bits "pout"))
      ~insts:
        [ D.inst ~name:"ba" ~module_:"blk"
            ~bindings:
              (List.map2 (fun f a -> (f, a)) (bits "in") (bits "pin")
              @ List.map2 (fun f a -> (f, a)) (bits "out") (bits "mid"));
          D.inst ~name:"bb" ~module_:"blk"
            ~bindings:
              (List.map2 (fun f a -> (f, a)) (bits "in") (bits "mid")
              @ List.map2 (fun f a -> (f, a)) (bits "out") (bits "pout")) ]
      ()
  in
  D.design ~top:"top" ~modules:[ top; blockm "blk" ]

let test_rotated_macro_orientation () =
  let flat = Flat.elaborate (wide_macro_design ()) in
  let die = Rect.make ~x:0.0 ~y:0.0 ~w:30.0 ~h:200.0 in
  let r = Hidap.place ~die flat in
  Alcotest.(check int) "both macros placed" 2 (List.length r.Hidap.placements);
  Alcotest.(check bool) "inside the die" true (Hidap.placement_bbox_ok r);
  List.iter
    (fun (p : Hidap.macro_placement) ->
      Alcotest.(check bool) "orientation reports the forced rotation" true
        (O.swaps_dims p.Hidap.orient))
    r.Hidap.placements;
  check_orientation_consistent flat r

let test_fig1_orientation_consistent () =
  check_orientation_consistent (Lazy.force fig1_flat) (Lazy.force fig1_placed)

(* ---- flipping ------------------------------------------------------- *)

let test_pin_positions () =
  let rect = Rect.make ~x:10.0 ~y:20.0 ~w:4.0 ~h:2.0 in
  let p_in = Hidap.Flipping.pin_position ~rect ~orient:O.R0 ~dir:`In in
  Alcotest.(check bool) "R0 input on west face" true
    (Point.equal p_in (Point.make 10.0 21.0));
  let p_out = Hidap.Flipping.pin_position ~rect ~orient:O.R0 ~dir:`Out in
  Alcotest.(check bool) "R0 output on east face" true
    (Point.equal p_out (Point.make 14.0 21.0));
  let p_my = Hidap.Flipping.pin_position ~rect ~orient:O.MY ~dir:`In in
  Alcotest.(check bool) "MY swaps input to east" true
    (Point.equal p_my (Point.make 14.0 21.0))

let test_flipping_gain_nonnegative () =
  let r = Lazy.force fig1_placed in
  Alcotest.(check bool) "flip gain >= 0" true (r.Hidap.flip_gain >= -1e-9)

let suite =
  [ ( "hidap.config",
      [ Alcotest.test_case "defaults" `Quick test_config_defaults;
        Alcotest.test_case "die sizing" `Quick test_die_for ] );
    ( "hidap.port_plan",
      [ Alcotest.test_case "boundary positions" `Quick test_port_plan;
        Alcotest.test_case "deterministic" `Quick test_port_plan_deterministic ] );
    ( "hidap.shape_curves",
      [ Alcotest.test_case "leaf curves" `Quick test_sgamma_leaves;
        Alcotest.test_case "packing quality" `Quick test_sgamma_packing_quality ] );
    ( "hidap.target_area",
      [ Alcotest.test_case "assignment" `Quick test_target_area ] );
    ( "hidap.layout_gen",
      [ Alcotest.test_case "single block" `Quick test_layout_gen_single_block;
        Alcotest.test_case "single block penalized" `Quick
          test_layout_gen_single_block_penalized;
        Alcotest.test_case "affinity pulls together" `Quick
          test_layout_gen_affinity_pulls_together ] );
    ( "hidap.flow",
      [ Alcotest.test_case "fig1 legal" `Quick test_place_fig1_legal;
        Alcotest.test_case "fig1 structure" `Quick test_place_fig1_structure;
        Alcotest.test_case "deterministic" `Slow test_place_deterministic;
        Alcotest.test_case "lambda sensitivity" `Slow test_place_lambda_changes_result;
        Alcotest.test_case "levels recorded" `Quick test_place_levels_recorded;
        Alcotest.test_case "lambda sweep" `Slow test_place_sweep;
        Alcotest.test_case "parallel sweep deterministic" `Slow
          test_place_sweep_parallel_deterministic ] );
    ( "hidap.orientation",
      [ Alcotest.test_case "oriented fit" `Quick test_oriented_fit;
        Alcotest.test_case "forced rotation reported" `Quick
          test_rotated_macro_orientation;
        Alcotest.test_case "fig1 orientations consistent" `Quick
          test_fig1_orientation_consistent ] );
    ( "hidap.flipping",
      [ Alcotest.test_case "pin positions" `Quick test_pin_positions;
        Alcotest.test_case "gain non-negative" `Quick test_flipping_gain_nonnegative ] ) ]
