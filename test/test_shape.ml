(* Tests for shape curves (paper §II-D / §IV-A). *)

module Curve = Shape.Curve

let check_float = Alcotest.(check (float 1e-9))

let qtest ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let points_arb =
  QCheck.(
    list_of_size (Gen.int_range 1 12)
      (pair (float_range 1.0 50.0) (float_range 1.0 50.0)))

let test_of_macro () =
  let c = Curve.of_macro ~w:6.0 ~h:4.0 () in
  Alcotest.(check int) "two orientations" 2 (Curve.size c);
  Alcotest.(check bool) "fits footprint" true (Curve.fits c ~w:6.0 ~h:4.0);
  Alcotest.(check bool) "fits rotated" true (Curve.fits c ~w:4.0 ~h:6.0);
  Alcotest.(check bool) "too small" false (Curve.fits c ~w:3.9 ~h:6.0);
  let sq = Curve.of_macro ~w:5.0 ~h:5.0 () in
  Alcotest.(check int) "square has one point" 1 (Curve.size sq);
  let norot = Curve.of_macro ~w:6.0 ~h:4.0 ~rotate:false () in
  Alcotest.(check int) "no rotation point" 1 (Curve.size norot)

let test_pareto_prunes_dominated () =
  let c = Curve.of_points [ (2.0, 2.0); (3.0, 3.0); (2.0, 3.0); (1.0, 4.0) ] in
  (* (3,3) and (2,3) are dominated by (2,2) *)
  Alcotest.(check (list (pair (float 0.0) (float 0.0)))) "staircase"
    [ (1.0, 4.0); (2.0, 2.0) ] (Curve.points c)

let test_of_points_invalid () =
  Alcotest.(check bool) "rejects empty" true
    (match Curve.of_points [] with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check bool) "rejects non-positive" true
    (match Curve.of_points [ (0.0, 3.0) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_unconstrained () =
  let u = Curve.unconstrained in
  Alcotest.(check bool) "is unconstrained" true (Curve.is_unconstrained u);
  Alcotest.(check bool) "fits anything" true (Curve.fits u ~w:0.001 ~h:0.001);
  check_float "min area zero" 0.0 (Curve.min_area u);
  Alcotest.(check (option (pair (float 0.0) (float 0.0)))) "no min point" None
    (Curve.min_area_point u);
  Alcotest.(check (list (pair (float 0.0) (float 0.0)))) "no points" [] (Curve.points u)

let test_min_height_width () =
  let c = Curve.of_points [ (2.0, 6.0); (4.0, 3.0); (8.0, 1.0) ] in
  Alcotest.(check (option (float 1e-9))) "min height at w=4" (Some 3.0) (Curve.min_height c ~w:4.0);
  Alcotest.(check (option (float 1e-9))) "min height at w=5" (Some 3.0) (Curve.min_height c ~w:5.0);
  Alcotest.(check (option (float 1e-9))) "min height at w=1.9" None (Curve.min_height c ~w:1.9);
  Alcotest.(check (option (float 1e-9))) "min width at h=3" (Some 4.0) (Curve.min_width c ~h:3.0);
  Alcotest.(check (option (float 1e-9))) "min width below all" None (Curve.min_width c ~h:0.5)

let test_compose_dims () =
  let a = Curve.of_points [ (2.0, 3.0) ] and b = Curve.of_points [ (4.0, 1.0) ] in
  (match Curve.points (Curve.compose_h a b) with
  | [ (w, h) ] ->
    check_float "widths add" 6.0 w;
    check_float "heights max" 3.0 h
  | _ -> Alcotest.fail "expected one point");
  match Curve.points (Curve.compose_v a b) with
  | [ (w, h) ] ->
    check_float "widths max" 4.0 w;
    check_float "heights add" 4.0 h
  | _ -> Alcotest.fail "expected one point"

let test_compose_with_unconstrained () =
  let a = Curve.of_points [ (2.0, 3.0) ] in
  Alcotest.(check bool) "h compose" true
    (Curve.points (Curve.compose_h a Curve.unconstrained) = Curve.points a);
  Alcotest.(check bool) "v compose" true
    (Curve.points (Curve.compose_v Curve.unconstrained a) = Curve.points a);
  Alcotest.(check bool) "both unconstrained" true
    (Curve.is_unconstrained (Curve.compose_best Curve.unconstrained Curve.unconstrained))

let test_prune () =
  let pts = List.init 20 (fun i -> (float_of_int (i + 1), float_of_int (21 - i))) in
  let c = Curve.of_points pts in
  let p = Curve.prune ~max_points:5 c in
  Alcotest.(check int) "pruned size" 5 (Curve.size p);
  (* extremes kept *)
  let ppts = Curve.points p in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "first kept" (1.0, 21.0) (List.hd ppts);
  Alcotest.(check (pair (float 0.0) (float 0.0))) "last kept" (20.0, 2.0)
    (List.nth ppts (List.length ppts - 1))

let staircase_invariant =
  qtest "points form a strict staircase" points_arb (fun pts ->
      match Curve.of_points pts with
      | exception Invalid_argument _ -> true
      | c ->
        let rec check = function
          | (w1, h1) :: ((w2, h2) :: _ as rest) -> w1 < w2 && h1 > h2 && check rest
          | _ -> true
        in
        check (Curve.points c))

let min_area_point_fits =
  qtest "curve fits its min-area point" points_arb (fun pts ->
      match Curve.of_points pts with
      | exception Invalid_argument _ -> true
      | c ->
        (match Curve.min_area_point c with
        | Some (w, h) -> Curve.fits c ~w ~h
        | None -> false))

let compose_min_area_superadditive =
  qtest "composition min area >= sum of parts"
    QCheck.(pair points_arb points_arb)
    (fun (pa, pb) ->
      match (Curve.of_points pa, Curve.of_points pb) with
      | exception Invalid_argument _ -> true
      | a, b ->
        let sum = Curve.min_area a +. Curve.min_area b in
        Curve.min_area (Curve.compose_h a b) >= sum -. 1e-6
        && Curve.min_area (Curve.compose_v a b) >= sum -. 1e-6
        && Curve.min_area (Curve.compose_best a b) >= sum -. 1e-6)

let compose_best_at_least_as_good =
  qtest "compose_best min area <= each composition"
    QCheck.(pair points_arb points_arb)
    (fun (pa, pb) ->
      match (Curve.of_points pa, Curve.of_points pb) with
      | exception Invalid_argument _ -> true
      | a, b ->
        let best = Curve.min_area (Curve.compose_best a b) in
        best <= Curve.min_area (Curve.compose_h a b) +. 1e-6
        && best <= Curve.min_area (Curve.compose_v a b) +. 1e-6)

let fits_monotone =
  qtest "fits is monotone in the box" points_arb (fun pts ->
      match Curve.of_points pts with
      | exception Invalid_argument _ -> true
      | c ->
        List.for_all
          (fun (w, h) -> Curve.fits c ~w:(w +. 1.0) ~h:(h +. 1.0))
          (Curve.points c))

let prune_conservative =
  qtest "pruned curve only keeps feasible boxes" points_arb (fun pts ->
      match Curve.of_points pts with
      | exception Invalid_argument _ -> true
      | c ->
        let p = Curve.prune ~max_points:4 c in
        List.for_all (fun (w, h) -> Curve.fits c ~w ~h) (Curve.points p))

(* The merge-walk compositions must be bit for bit the Pareto frontier
   of the full cartesian product they replaced (DESIGN.md section 14
   leans on this for SA determinism): same floats, same order. *)
let compose_matches_cartesian =
  let cartesian f a b =
    let pts = ref [] in
    List.iter
      (fun p1 -> List.iter (fun p2 -> pts := f p1 p2 :: !pts) (Curve.points b))
      (Curve.points a);
    Curve.of_points !pts
  in
  qtest "merge compose = cartesian pareto, bitwise"
    QCheck.(pair points_arb points_arb)
    (fun (pa, pb) ->
      match (Curve.of_points pa, Curve.of_points pb) with
      | exception Invalid_argument _ -> true
      | a, b ->
        let beq_pts c c' =
          List.for_all2
            (fun (w, h) (w', h') ->
              Int64.bits_of_float w = Int64.bits_of_float w'
              && Int64.bits_of_float h = Int64.bits_of_float h')
            (Curve.points c) (Curve.points c')
        in
        let same f g =
          let m = f a b and c = cartesian g a b in
          Curve.size m = Curve.size c && beq_pts m c
        in
        same Curve.compose_h (fun (w1, h1) (w2, h2) -> (w1 +. w2, max h1 h2))
        && same Curve.compose_v (fun (w1, h1) (w2, h2) -> (max w1 w2, h1 +. h2)))

let suite =
  [ ( "shape.curve",
      [ Alcotest.test_case "of_macro" `Quick test_of_macro;
        Alcotest.test_case "pareto pruning" `Quick test_pareto_prunes_dominated;
        Alcotest.test_case "invalid inputs" `Quick test_of_points_invalid;
        Alcotest.test_case "unconstrained" `Quick test_unconstrained;
        Alcotest.test_case "min height/width" `Quick test_min_height_width;
        Alcotest.test_case "compose dims" `Quick test_compose_dims;
        Alcotest.test_case "compose with unconstrained" `Quick
          test_compose_with_unconstrained;
        Alcotest.test_case "prune" `Quick test_prune;
        staircase_invariant; min_area_point_fits; compose_min_area_superadditive;
        compose_best_at_least_as_good; fits_monotone; prune_conservative;
        compose_matches_cartesian ] ) ]
