(* lib/serve: protocol round-trips and fuzz, job-queue semantics, and
   end-to-end daemon robustness — deadline, backpressure, retry,
   drain/park/resume, crash recovery — against in-process engines
   talking over real Unix sockets. *)

module P = Serve.Proto
module J = Obs.Jsonx
module Jobq = Serve.Jobq

(* ---- fixtures ----------------------------------------------------- *)

(* fig1 as inline HNL text: the smallest design the flow places, so
   daemon jobs stay fast. *)
let fig1_hnl = lazy (Hnl.Printer.to_string (Circuitgen.Suite.fig1_design ()))

let fig1_submit ?(seed = 1) ?(priority = 0) ?deadline_s ?(max_retries = 0)
    ?(label = "fig1") () =
  { P.default_submit with
    P.hnl = Some (Lazy.force fig1_hnl); seed; priority; deadline_s; max_retries;
    label }

let c1_submit ?(label = "c1") () =
  { P.default_submit with P.circuit = Some "c1"; label }

(* Short scratch dirs: Unix socket paths are capped around 100 bytes,
   so everything lives directly under the system temp dir. *)
let scratch () =
  let dir = Filename.temp_file "hidap-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

type daemon = {
  eng : Serve.Engine.t;
  dom : unit Domain.t;
  sock : string;
  state_dir : string;
}

let start ?(queue_limit = 8) ?(drain_grace_s = 5.0) ?(retry_base_s = 0.005)
    ?(max_line_bytes = 1 lsl 20) ?(faults = []) dir =
  let sock = Filename.concat dir "s.sock" in
  let state_dir = Filename.concat dir "state" in
  let cfg =
    { (Serve.Engine.default_config ~socket_path:sock ~state_dir) with
      Serve.Engine.queue_limit; drain_grace_s; retry_base_s; max_line_bytes;
      faults }
  in
  let eng = Serve.Engine.create cfg in
  let dom = Domain.spawn (fun () -> Serve.Engine.run eng) in
  { eng; dom; sock; state_dir }

let stop d =
  Serve.Engine.request_drain d.eng;
  Domain.join d.dom

let connect d = Serve.Client.connect ~socket_path:d.sock

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let submit_ok cl spec =
  match ok (Serve.Client.submit cl spec) with
  | `Accepted (id, _) -> id
  | `Rejected (reason, _, _) -> Alcotest.failf "unexpected rejection: %s" reason

let wait_state cl id = (ok (Serve.Client.wait cl id)).P.state

(* ---- protocol ----------------------------------------------------- *)

let test_proto_request_roundtrip () =
  let reqs =
    [ P.Ping; P.Submit (fig1_submit ~seed:7 ~priority:3 ~deadline_s:1.5 ());
      P.Submit (c1_submit ()); P.Status "j0001"; P.List; P.Stats;
      P.Result "j0002"; P.Report "j0003"; P.Watch "j0004"; P.Drain ]
  in
  List.iter
    (fun r ->
      match P.request_of_json (P.request_to_json r) with
      | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    reqs

let test_proto_response_roundtrip () =
  let view =
    { P.id = "j0001"; label = "x"; state = P.Timed_out; attempts = 2;
      priority = 1; detail = "deadline 0.5s" }
  in
  let stats =
    { P.queue_depth = 1; queue_limit = 8; accepted = 3; rejected_backpressure = 1;
      rejected_draining = 0; completed = 2; failed = 0; timed_out = 1; parked = 0;
      retried = 1; draining = false }
  in
  let resps =
    [ P.Pong; P.Accepted { id = "j0001"; depth = 2 };
      P.Rejected { reason = "backpressure"; depth = 8; limit = 8 }; P.Job view;
      P.Jobs [ view; { view with P.id = "j0002"; state = P.Running } ];
      P.Stats_reply stats;
      P.Result_reply { id = "j0001"; qor = J.Obj [ ("k", J.Int 1) ] };
      P.Report_reply { id = "j0001"; html = "<html>&\"</html>" };
      P.Progress { id = "j0001"; event = J.Obj [ ("event", J.String "x") ] };
      P.Draining_reply; P.Error_reply "nope" ]
  in
  List.iter
    (fun r ->
      match P.response_of_json (P.response_to_json r) with
      | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    resps;
  (* every state has a stable wire name *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "state round-trips" true
        (P.state_of_string (P.state_to_string s) = Some s))
    [ P.Pending; P.Running; P.Done; P.Failed; P.Timed_out; P.Parked ]

let test_proto_envelope () =
  let reject line =
    match P.request_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad envelope: %s" line
  in
  reject {|{"schema":"wrong","version":1,"req":"ping"}|};
  reject {|{"schema":"hidap-serve","version":99,"req":"ping"}|};
  reject {|{"schema":"hidap-serve","version":1}|};
  reject {|{"schema":"hidap-serve","version":1,"req":"no-such-request"}|};
  reject "not json at all";
  reject "";
  match P.request_of_line {|{"schema":"hidap-serve","version":1,"req":"ping"}|} with
  | Ok P.Ping -> ()
  | _ -> Alcotest.fail "minimal ping refused"

(* Byte-level garbage must always come back as [Error _] — decoding is
   total because the daemon feeds raw client input through it. *)
let test_proto_decode_total () =
  let rng = Util.Rng.create 0x5E41 in
  let good = P.to_line (P.request_to_json (P.Submit (fig1_submit ()))) in
  for _ = 1 to 300 do
    let b = Bytes.of_string good in
    for _ = 0 to Util.Rng.int rng 6 do
      Bytes.set b
        (Util.Rng.int rng (Bytes.length b))
        (Char.chr (Util.Rng.int rng 256))
    done;
    let s = Bytes.to_string b in
    let s =
      if Util.Rng.int rng 3 = 0 then
        String.sub s 0 (Util.Rng.int rng (String.length s))
      else s
    in
    (match P.request_of_line s with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "request_of_line raised %s" (Printexc.to_string e));
    match P.response_of_line s with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "response_of_line raised %s" (Printexc.to_string e)
  done

(* ---- job queue ---------------------------------------------------- *)

let test_jobq_admission () =
  let q = Jobq.create ~limit:2 in
  (match Jobq.push q ~priority:0 ~seq:1 "a" with
  | Jobq.Enqueued 1 -> ()
  | _ -> Alcotest.fail "first push");
  (match Jobq.push q ~priority:0 ~seq:2 "b" with
  | Jobq.Enqueued 2 -> ()
  | _ -> Alcotest.fail "second push");
  (match Jobq.push q ~priority:9 ~seq:3 "c" with
  | Jobq.Full 2 -> ()
  | _ -> Alcotest.fail "push past the bound must be refused");
  (* retries re-enter past the bound *)
  Jobq.force_push q ~priority:0 ~seq:4 "d";
  Alcotest.(check int) "forced depth" 3 (Jobq.depth q)

let test_jobq_ordering () =
  let q = Jobq.create ~limit:10 in
  ignore (Jobq.push q ~priority:0 ~seq:1 "low-first");
  ignore (Jobq.push q ~priority:5 ~seq:2 "high-a");
  ignore (Jobq.push q ~priority:5 ~seq:3 "high-b");
  ignore (Jobq.push q ~priority:0 ~seq:4 "low-second");
  let order = List.init 4 (fun _ -> Option.get (Jobq.pop q)) in
  Alcotest.(check (list string))
    "priority desc, FIFO within a priority"
    [ "high-a"; "high-b"; "low-first"; "low-second" ]
    order

let test_jobq_backoff () =
  let q = Jobq.create ~limit:4 in
  let t0 = Unix.gettimeofday () in
  Jobq.force_push q ~priority:0 ~seq:1 ~ready_s:(t0 +. 0.15) "later";
  ignore (Jobq.push q ~priority:0 ~seq:2 "now");
  Alcotest.(check string) "eligible entry first" "now" (Option.get (Jobq.pop q));
  Alcotest.(check string) "backed-off entry held" "later"
    (Option.get (Jobq.pop q));
  let waited = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "pop waited for ready time (%.3fs)" waited)
    true (waited >= 0.14)

let test_jobq_close_drains () =
  let q = Jobq.create ~limit:4 in
  ignore (Jobq.push q ~priority:0 ~seq:1 "left-behind");
  Jobq.close q;
  (match Jobq.push q ~priority:0 ~seq:2 "refused" with
  | Jobq.Full _ -> ()
  | Jobq.Enqueued _ -> Alcotest.fail "closed queue accepted a push");
  Alcotest.(check bool) "pop on closed queue is None (drain)" true
    (Jobq.pop q = None);
  (* a blocked pop wakes up on close *)
  let q2 = Jobq.create ~limit:1 in
  let popper = Domain.spawn (fun () -> Jobq.pop q2) in
  Unix.sleepf 0.05;
  Jobq.close q2;
  Alcotest.(check bool) "blocked pop released" true (Domain.join popper = None)

(* ---- end-to-end daemon -------------------------------------------- *)

let test_serve_done_result_report () =
  let d = start (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  ok (Serve.Client.ping cl);
  let id = submit_ok cl (fig1_submit ()) in
  Alcotest.(check string) "first id" "j0001" id;
  (match wait_state cl id with
  | P.Done -> ()
  | s -> Alcotest.failf "job ended %s" (P.state_to_string s));
  (* the QoR ledger and the HTML report are served back *)
  let qor = ok (Serve.Client.result cl id) in
  (match J.member "records" qor with
  | Some (J.List [ _ ]) -> ()
  | _ -> Alcotest.fail "result is not a one-record ledger");
  let html = ok (Serve.Client.report cl id) in
  Alcotest.(check bool) "report looks like html" true
    (String.length html > 0
    && Astring.String.is_infix ~affix:"<html" (String.lowercase_ascii html));
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "accepted" 1 s.P.accepted;
  Alcotest.(check int) "completed" 1 s.P.completed;
  (* result of a non-existent job is a structured error *)
  (match Serve.Client.result cl "j9999" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "result for unknown job succeeded");
  Serve.Client.close cl

let test_serve_deadline_lands_timed_out () =
  let d = start (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id = submit_ok cl (fig1_submit ~deadline_s:0.0005 ~label:"doomed" ()) in
  (match wait_state cl id with
  | P.Timed_out -> ()
  | s -> Alcotest.failf "deadline job ended %s" (P.state_to_string s));
  (* the blast radius is one job: the next one completes normally *)
  let id2 = submit_ok cl (fig1_submit ~label:"fine" ()) in
  (match wait_state cl id2 with
  | P.Done -> ()
  | s -> Alcotest.failf "follow-up job ended %s" (P.state_to_string s));
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "timed_out" 1 s.P.timed_out;
  Alcotest.(check int) "completed" 1 s.P.completed;
  Serve.Client.close cl

let test_serve_backpressure () =
  (* Stall the worker on its first job so submissions pile up behind a
     queue bound of 1: the third submit must be refused, structured. *)
  let faults =
    [ { Guard.Fault.site = "serve.worker"; nth = 1; action = Guard.Fault.Stall 0.6 } ]
  in
  let d = start ~queue_limit:1 ~faults (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id1 = submit_ok cl (fig1_submit ~label:"stalled" ()) in
  Unix.sleepf 0.15 (* let the worker pop it and hit the stall *);
  let id2 = submit_ok cl (fig1_submit ~label:"queued" ()) in
  (match ok (Serve.Client.submit cl (fig1_submit ~label:"refused" ())) with
  | `Rejected ("backpressure", depth, limit) ->
    Alcotest.(check int) "depth at refusal" 1 depth;
    Alcotest.(check int) "limit reported" 1 limit
  | `Rejected (r, _, _) -> Alcotest.failf "wrong rejection reason %s" r
  | `Accepted _ -> Alcotest.fail "overfull submit accepted");
  (* both admitted jobs still finish *)
  List.iter
    (fun id ->
      match wait_state cl id with
      | P.Done -> ()
      | s -> Alcotest.failf "%s ended %s" id (P.state_to_string s))
    [ id1; id2 ];
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "rejections counted" 1 s.P.rejected_backpressure;
  Serve.Client.close cl

let test_serve_retry_then_done () =
  (* Transient serve.worker fault: attempt 1 dies, the retry heals. *)
  let faults =
    [ { Guard.Fault.site = "serve.worker"; nth = 1; action = Guard.Fault.Raise } ]
  in
  let d = start ~faults (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id = submit_ok cl (fig1_submit ~max_retries:2 ()) in
  let v = ok (Serve.Client.wait cl id) in
  (match v.P.state with
  | P.Done -> ()
  | s -> Alcotest.failf "retried job ended %s" (P.state_to_string s));
  Alcotest.(check int) "two attempts" 2 v.P.attempts;
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "retried" 1 s.P.retried;
  Serve.Client.close cl

let test_serve_fails_after_retry_budget () =
  let faults =
    [ { Guard.Fault.site = "serve.worker"; nth = 99; action = Guard.Fault.Raise } ]
  in
  let d = start ~faults (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id = submit_ok cl (fig1_submit ~max_retries:1 ()) in
  let v = ok (Serve.Client.wait cl id) in
  (match v.P.state with
  | P.Failed -> ()
  | s -> Alcotest.failf "exhausted job ended %s" (P.state_to_string s));
  Alcotest.(check int) "initial attempt + one retry" 2 v.P.attempts;
  Serve.Client.close cl

let test_serve_invalid_submissions () =
  let d = start (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  (* neither circuit nor hnl: refused at the door *)
  (match Serve.Client.submit cl P.default_submit with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty submit accepted");
  (* unparseable netlist: accepted, then fails terminally without retry *)
  let id =
    submit_ok cl
      { P.default_submit with P.hnl = Some "not a netlist"; max_retries = 5 }
  in
  let v = ok (Serve.Client.wait cl id) in
  (match v.P.state with
  | P.Failed -> ()
  | s -> Alcotest.failf "invalid job ended %s" (P.state_to_string s));
  Alcotest.(check int) "invalid jobs never retry" 1 v.P.attempts;
  Serve.Client.close cl

let test_serve_watch_streams_progress () =
  let d = start (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id = submit_ok cl (fig1_submit ()) in
  let events = ref 0 in
  let v =
    ok
      (Serve.Client.watch cl id ~on_event:(fun e ->
           (* relayed events are hidap-progress documents *)
           (match J.member "schema" e with
           | Some (J.String "hidap-progress") -> ()
           | _ -> Alcotest.fail "relayed event is not a progress document");
           incr events))
  in
  (match v.P.state with
  | P.Done -> ()
  | s -> Alcotest.failf "watched job ended %s" (P.state_to_string s));
  Alcotest.(check bool)
    (Printf.sprintf "progress events relayed (%d)" !events)
    true (!events > 0);
  Serve.Client.close cl

(* ---- framing fuzz -------------------------------------------------- *)

let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  fd

let raw_send fd s =
  let rec go off =
    if off < String.length s then
      go (off + Unix.write_substring fd s off (String.length s - off))
  in
  (* the daemon is allowed to drop the connection mid-write *)
  try go 0 with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

(* Read one response line; [None] on clean disconnect or timeout. *)
let raw_recv_line fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | _ ->
      if Bytes.get b 0 = '\n' then Some (Buffer.contents buf)
      else begin
        Buffer.add_char buf (Bytes.get b 0);
        go ()
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> None
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> None
  in
  go ()

let test_serve_framing_fuzz () =
  (* the bound must clear the inline-HNL submit used at the end, so
     real work still fits while the oversized probes do not *)
  let submit_len =
    String.length (P.to_line (P.request_to_json (P.Submit (fig1_submit ()))))
  in
  let max_line_bytes = 4 * submit_len in
  let d = start ~max_line_bytes (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let assert_alive tag =
    let cl = connect d in
    (match Serve.Client.ping cl with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "daemon dead after %s: %s" tag msg);
    Serve.Client.close cl
  in
  let expect_error tag line =
    let fd = raw_connect d.sock in
    raw_send fd line;
    (match raw_recv_line fd with
    | None -> () (* clean disconnect is an acceptable answer *)
    | Some reply -> (
      match P.response_of_line reply with
      | Ok (P.Error_reply _) -> ()
      | Ok r ->
        Alcotest.failf "%s answered %s" tag
          (J.to_string ~compact:true (P.response_to_json r))
      | Error msg -> Alcotest.failf "%s: unparseable reply %s" tag msg));
    (try Unix.close fd with Unix.Unix_error _ -> ());
    assert_alive tag
  in
  expect_error "garbage" "complete garbage\n";
  expect_error "wrong schema" ({|{"schema":"mqtt","version":1,"req":"ping"}|} ^ "\n");
  expect_error "newer version" {|{"schema":"hidap-serve","version":42,"req":"ping"}
|};
  expect_error "unknown request" {|{"schema":"hidap-serve","version":1,"req":"?"}
|};
  expect_error "oversized line" (String.make (max_line_bytes + 1024) 'a' ^ "\n");
  (* oversized with no terminator at all: the buffer bound trips *)
  expect_error "oversized unterminated" (String.make (2 * max_line_bytes) 'b');
  (* truncated request then hard disconnect *)
  let fd = raw_connect d.sock in
  raw_send fd {|{"schema":"hidap-serve","ver|};
  Unix.close fd;
  assert_alive "truncated disconnect";
  (* random bytes, many connections *)
  let rng = Util.Rng.create 0xFA22 in
  for _ = 1 to 25 do
    let n = 1 + Util.Rng.int rng 600 in
    let b = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set b i (Char.chr (Util.Rng.int rng 256))
    done;
    let fd = raw_connect d.sock in
    raw_send fd (Bytes.to_string b);
    raw_send fd "\n";
    ignore (raw_recv_line fd);
    try Unix.close fd with Unix.Unix_error _ -> ()
  done;
  assert_alive "random bytes";
  (* and after all that abuse, real work still goes through *)
  let cl = connect d in
  let id = submit_ok cl (fig1_submit ()) in
  (match wait_state cl id with
  | P.Done -> ()
  | s -> Alcotest.failf "post-fuzz job ended %s" (P.state_to_string s));
  Serve.Client.close cl

(* ---- drain / park / resume ---------------------------------------- *)

let record_macros path =
  match J.parse_file path with
  | Error msg -> Alcotest.failf "%s: %s" path msg
  | Ok doc -> (
    match J.member "records" doc with
    | Some (J.List [ r ]) -> (
      match J.member "macros" r with
      | Some m -> m
      | None -> Alcotest.failf "%s: no macros in record" path)
    | _ -> Alcotest.failf "%s: not a one-record ledger" path)

let record_resumed_from path =
  match J.parse_file path with
  | Error msg -> Alcotest.failf "%s: %s" path msg
  | Ok doc -> (
    match J.member "records" doc with
    | Some (J.List [ r ]) -> (
      match J.member "ckpt" r with
      | Some ck -> J.member "resumed_from" ck
      | None -> None)
    | _ -> None)

(* SIGTERM mid-job: the job checkpoints and parks; a new daemon on the
   same state dir resumes it to a placement bit-identical to a control
   run of the same spec. c1 runs long enough to be caught mid-SA. *)
let test_serve_drain_parks_then_resumes () =
  let dir = scratch () in
  let spec = c1_submit () in
  let d1 = start ~drain_grace_s:0.05 dir in
  let id =
    Fun.protect ~finally:(fun () -> try stop d1 with _ -> ()) @@ fun () ->
    let cl = connect d1 in
    let id = submit_ok cl spec in
    Unix.sleepf 0.4 (* let the job get mid-flow *);
    Serve.Engine.request_drain d1.eng;
    Serve.Client.close cl;
    id
  in
  (* the daemon is gone; the parked job survives on disk *)
  (match Serve.Job.load ~state_dir:d1.state_dir id with
  | Ok j ->
    (match j.Serve.Job.state with
    | P.Parked -> ()
    | P.Done ->
      (* the machine outran the sleep: the job finished inside the
         grace window, which is also a correct drain. Nothing to
         resume, so the rest of this test has no subject. *)
      Alcotest.skip ()
    | s -> Alcotest.failf "after drain the job is %s" (P.state_to_string s))
  | Error msg -> Alcotest.failf "parked job unreadable: %s" msg);
  (* restart on the same state dir: the job resumes and completes *)
  let d2 = start dir in
  Fun.protect ~finally:(fun () -> try stop d2 with _ -> ()) @@ fun () ->
  let cl = connect d2 in
  let control = submit_ok cl spec in
  (* serial worker: the recovered job (lower seq) runs first *)
  (match wait_state cl control with
  | P.Done -> ()
  | s -> Alcotest.failf "control job ended %s" (P.state_to_string s));
  let v = ok (Serve.Client.status cl id) in
  (match v.P.state with
  | P.Done -> ()
  | s -> Alcotest.failf "resumed job ended %s" (P.state_to_string s));
  let resumed = Serve.Job.result_path ~state_dir:d2.state_dir id in
  let fresh = Serve.Job.result_path ~state_dir:d2.state_dir control in
  (match record_resumed_from resumed with
  | Some J.Null | None ->
    Alcotest.fail "resumed job did not restart from a checkpoint"
  | Some _ -> ());
  Alcotest.(check bool) "resumed placement bit-identical to control" true
    (record_macros resumed = record_macros fresh);
  Serve.Client.close cl

(* kill -9 simulation: a job.json left in running state (no daemon
   shutdown ran) must be recovered as pending and completed. *)
let test_serve_crash_recovery () =
  let dir = scratch () in
  let state_dir = Filename.concat dir "state" in
  let j = Serve.Job.make ~seq:1 (fig1_submit ()) in
  j.Serve.Job.state <- P.Running;
  j.Serve.Job.attempts <- 1;
  Serve.Job.save ~state_dir j;
  let d = start dir in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let v = ok (Serve.Client.wait cl j.Serve.Job.id) in
  (match v.P.state with
  | P.Done -> ()
  | s -> Alcotest.failf "recovered job ended %s" (P.state_to_string s));
  Alcotest.(check bool) "recovery noted in detail" true
    (Astring.String.is_infix ~affix:"recover" v.P.detail);
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "completed after recovery" 1 s.P.completed;
  Serve.Client.close cl

(* Draining refuses new work with its own structured reason. *)
let test_serve_draining_rejects () =
  let d = start (scratch ()) in
  let cl = connect d in
  ok (Serve.Client.drain cl);
  (match Serve.Client.submit cl (fig1_submit ()) with
  | Ok (`Rejected ("draining", _, _)) -> ()
  | Ok (`Rejected (r, _, _)) -> Alcotest.failf "wrong rejection %s" r
  | Ok (`Accepted _) -> Alcotest.fail "draining daemon accepted a job"
  | Error _ -> () (* the daemon may already have shut the socket *));
  Serve.Client.close cl;
  Domain.join d.dom

let suite =
  [ ( "serve",
      [ Alcotest.test_case "proto request round-trip" `Quick
          test_proto_request_roundtrip;
        Alcotest.test_case "proto response round-trip" `Quick
          test_proto_response_roundtrip;
        Alcotest.test_case "proto envelope checks" `Quick test_proto_envelope;
        Alcotest.test_case "proto decoding is total" `Quick
          test_proto_decode_total;
        Alcotest.test_case "jobq admission bound" `Quick test_jobq_admission;
        Alcotest.test_case "jobq priority + FIFO" `Quick test_jobq_ordering;
        Alcotest.test_case "jobq retry backoff" `Quick test_jobq_backoff;
        Alcotest.test_case "jobq close means drain" `Quick
          test_jobq_close_drains;
        Alcotest.test_case "job done, result and report served" `Slow
          test_serve_done_result_report;
        Alcotest.test_case "deadline lands in timed-out" `Slow
          test_serve_deadline_lands_timed_out;
        Alcotest.test_case "backpressure rejection at the bound" `Slow
          test_serve_backpressure;
        Alcotest.test_case "transient fault retries then done" `Slow
          test_serve_retry_then_done;
        Alcotest.test_case "retry budget exhausts to failed" `Slow
          test_serve_fails_after_retry_budget;
        Alcotest.test_case "invalid submissions fail fast" `Slow
          test_serve_invalid_submissions;
        Alcotest.test_case "watch streams progress" `Slow
          test_serve_watch_streams_progress;
        Alcotest.test_case "framing fuzz never kills the daemon" `Slow
          test_serve_framing_fuzz;
        Alcotest.test_case "drain parks, restart resumes bit-identically" `Slow
          test_serve_drain_parks_then_resumes;
        Alcotest.test_case "crash recovery completes the job" `Slow
          test_serve_crash_recovery;
        Alcotest.test_case "draining rejects new work" `Quick
          test_serve_draining_rejects ] ) ]
