(* lib/serve: protocol round-trips and fuzz, job-queue semantics,
   worker exit classification, and end-to-end daemon robustness —
   deadline, backpressure, retry, worker crash/hang containment,
   rlimits, multi-client stress, drain/park/resume, crash recovery,
   stale-socket recovery — against real `hidap serve` daemon
   subprocesses talking over Unix sockets.

   The daemons must be subprocesses, not in-process engines: the serve
   engine forks a worker per job attempt, and OCaml 5 refuses
   Unix.fork in any process that has ever created a domain — which
   this test binary does. Unix.create_process (posix_spawn-based) is
   unaffected. *)

module P = Serve.Proto
module J = Obs.Jsonx
module Jobq = Serve.Jobq
module Worker = Serve.Worker

(* A daemon dying under a client must surface as a typed Conn error,
   not kill this test binary with SIGPIPE. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ---- fixtures ----------------------------------------------------- *)

(* fig1 as inline HNL text: the smallest design the flow places, so
   daemon jobs stay fast. *)
let fig1_hnl = lazy (Hnl.Printer.to_string (Circuitgen.Suite.fig1_design ()))

let fig1_submit ?(seed = 1) ?(priority = 0) ?deadline_s ?(max_retries = 0)
    ?(label = "fig1") () =
  { P.default_submit with
    P.hnl = Some (Lazy.force fig1_hnl); seed; priority; deadline_s; max_retries;
    label }

let c1_submit ?(label = "c1") () =
  { P.default_submit with P.circuit = Some "c1"; label }

let c5_submit ?(max_retries = 0) ?(label = "c5") () =
  { P.default_submit with P.circuit = Some "c5"; max_retries; label }

(* Short scratch dirs: Unix socket paths are capped around 100 bytes,
   so everything lives directly under the system temp dir. *)
let scratch () =
  let dir = Filename.temp_file "hidap-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

(* The real CLI binary, located relative to this test executable:
   _build/default/test/main.exe -> _build/default/bin/hidap_cli.exe.
   The dune rule declares the dependency so it is always built. *)
let cli =
  lazy
    (let p =
       Filename.concat
         (Filename.dirname (Filename.dirname Sys.executable_name))
         (Filename.concat "bin" "hidap_cli.exe")
     in
     if not (Sys.file_exists p) then
       Alcotest.failf "hidap_cli.exe not found at %s" p;
     p)

type daemon = { pid : int; sock : string; state_dir : string; log : string }

let dump_log d =
  match open_in d.log with
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  | exception Sys_error _ -> "<no log>"

let start ?(workers = 1) ?(queue_limit = 8) ?(drain_grace_s = 5.0)
    ?(retry_base_s = 0.005) ?max_line_bytes ?job_stall_s ?job_mem_mb ?job_cpu_s
    ?fault dir =
  let sock = Filename.concat dir "s.sock" in
  let state_dir = Filename.concat dir "state" in
  let log = Filename.concat dir "serve.log" in
  let opt flag v f = match v with None -> [] | Some x -> [ flag; f x ] in
  let args =
    [ Lazy.force cli; "serve"; "--socket"; sock; "--state-dir"; state_dir;
      "--workers"; string_of_int workers; "--queue-limit";
      string_of_int queue_limit; "--drain-grace"; string_of_float drain_grace_s;
      "--retry-base"; string_of_float retry_base_s ]
    @ opt "--max-line-bytes" max_line_bytes string_of_int
    @ opt "--job-stall-s" job_stall_s string_of_float
    @ opt "--job-mem-mb" job_mem_mb string_of_int
    @ opt "--job-cpu-s" job_cpu_s string_of_int
  in
  let env =
    Array.of_list
      ((match fault with None -> [] | Some f -> [ "HIDAP_FAULT=" ^ f ])
      @ (Array.to_list (Unix.environment ())
        |> List.filter (fun kv ->
               not (String.length kv >= 12 && String.sub kv 0 12 = "HIDAP_FAULT="))
        ))
  in
  let logfd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process_env (Lazy.force cli) (Array.of_list args) env Unix.stdin
      logfd logfd
  in
  Unix.close logfd;
  let d = { pid; sock; state_dir; log } in
  (* wait for the daemon to answer *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec poll () =
    match Serve.Client.connect ~socket_path:sock with
    | cl ->
      (match Serve.Client.ping cl with
      | Ok () -> Serve.Client.close cl
      | Error _ ->
        Serve.Client.close cl;
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "daemon never answered ping:\n%s" (dump_log d);
        Unix.sleepf 0.02;
        poll ())
    | exception Unix.Unix_error _ ->
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _ -> Alcotest.failf "daemon died during startup:\n%s" (dump_log d));
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "daemon never came up:\n%s" (dump_log d);
      Unix.sleepf 0.02;
      poll ()
  in
  poll ();
  d

(* Wait for the daemon process to exit; SIGKILL + fail past the bound. *)
let wait_exit ?(timeout_s = 60.0) d =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] d.pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] d.pid);
        Alcotest.failf "daemon did not exit within %gs:\n%s" timeout_s
          (dump_log d)
      end
      else begin
        Unix.sleepf 0.02;
        go ()
      end
    | _, st -> st
  in
  go ()

let stop d =
  (try Unix.kill d.pid Sys.sigterm with Unix.Unix_error _ -> ());
  match wait_exit d with
  | Unix.WEXITED 0 -> ()
  | st ->
    let s =
      match st with
      | Unix.WEXITED c -> Printf.sprintf "exit %d" c
      | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
      | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s
    in
    Alcotest.failf "daemon drain ended with %s:\n%s" s (dump_log d)

let kill9 d =
  (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (wait_exit d)

let connect d = Serve.Client.connect ~socket_path:d.sock

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Serve.Client.error_message e)

let submit_ok cl spec =
  match ok (Serve.Client.submit cl spec) with
  | `Accepted (id, _) -> id
  | `Rejected (reason, _, _) -> Alcotest.failf "unexpected rejection: %s" reason

let wait_state ?timeout_s cl id = (ok (Serve.Client.wait ?timeout_s cl id)).P.state

(* ---- protocol ----------------------------------------------------- *)

let test_proto_request_roundtrip () =
  let reqs =
    [ P.Ping; P.Submit (fig1_submit ~seed:7 ~priority:3 ~deadline_s:1.5 ());
      P.Submit (c1_submit ()); P.Status "j0001"; P.List; P.Stats;
      P.Result "j0002"; P.Report "j0003"; P.Watch "j0004"; P.Drain ]
  in
  List.iter
    (fun r ->
      match P.request_of_json (P.request_to_json r) with
      | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    reqs

let test_proto_response_roundtrip () =
  let view =
    { P.id = "j0001"; label = "x"; state = P.Timed_out; attempts = 2;
      priority = 1; detail = "deadline 0.5s" }
  in
  let stats =
    { P.queue_depth = 1; queue_limit = 8; accepted = 3; rejected_backpressure = 1;
      rejected_draining = 0; completed = 2; failed = 0; timed_out = 1; parked = 0;
      retried = 1; worker_lost = 1; draining = false;
      workers =
        [ { P.slot = 0; pid = Some 4242; job = Some "j0002"; elapsed_s = 1.5 };
          { P.slot = 1; pid = None; job = None; elapsed_s = 0.0 } ] }
  in
  let resps =
    [ P.Pong; P.Accepted { id = "j0001"; depth = 2 };
      P.Rejected { reason = "backpressure"; depth = 8; limit = 8 }; P.Job view;
      P.Jobs [ view; { view with P.id = "j0002"; state = P.Running } ];
      P.Stats_reply stats;
      P.Result_reply { id = "j0001"; qor = J.Obj [ ("k", J.Int 1) ] };
      P.Report_reply { id = "j0001"; html = "<html>&\"</html>" };
      P.Progress { id = "j0001"; event = J.Obj [ ("event", J.String "x") ] };
      P.Draining_reply; P.Error_reply "nope" ]
  in
  List.iter
    (fun r ->
      match P.response_of_json (P.response_to_json r) with
      | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    resps;
  (* every state has a stable wire name *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "state round-trips" true
        (P.state_of_string (P.state_to_string s) = Some s))
    [ P.Pending; P.Running; P.Done; P.Failed; P.Timed_out; P.Parked ]

let test_proto_envelope () =
  let reject line =
    match P.request_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad envelope: %s" line
  in
  reject {|{"schema":"wrong","version":1,"req":"ping"}|};
  reject {|{"schema":"hidap-serve","version":99,"req":"ping"}|};
  reject {|{"schema":"hidap-serve","version":1}|};
  reject {|{"schema":"hidap-serve","version":1,"req":"no-such-request"}|};
  reject "not json at all";
  reject "";
  match P.request_of_line {|{"schema":"hidap-serve","version":1,"req":"ping"}|} with
  | Ok P.Ping -> ()
  | _ -> Alcotest.fail "minimal ping refused"

(* Byte-level garbage must always come back as [Error _] — decoding is
   total because the daemon feeds raw client input through it. *)
let test_proto_decode_total () =
  let rng = Util.Rng.create 0x5E41 in
  let good = P.to_line (P.request_to_json (P.Submit (fig1_submit ()))) in
  for _ = 1 to 300 do
    let b = Bytes.of_string good in
    for _ = 0 to Util.Rng.int rng 6 do
      Bytes.set b
        (Util.Rng.int rng (Bytes.length b))
        (Char.chr (Util.Rng.int rng 256))
    done;
    let s = Bytes.to_string b in
    let s =
      if Util.Rng.int rng 3 = 0 then
        String.sub s 0 (Util.Rng.int rng (String.length s))
      else s
    in
    (match P.request_of_line s with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "request_of_line raised %s" (Printexc.to_string e));
    match P.response_of_line s with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "response_of_line raised %s" (Printexc.to_string e)
  done

(* ---- job queue ---------------------------------------------------- *)

let test_jobq_admission () =
  let q = Jobq.create ~limit:2 in
  (match Jobq.push q ~priority:0 ~seq:1 "a" with
  | Jobq.Enqueued 1 -> ()
  | _ -> Alcotest.fail "first push");
  (match Jobq.push q ~priority:0 ~seq:2 "b" with
  | Jobq.Enqueued 2 -> ()
  | _ -> Alcotest.fail "second push");
  (match Jobq.push q ~priority:9 ~seq:3 "c" with
  | Jobq.Full 2 -> ()
  | _ -> Alcotest.fail "push past the bound must be refused");
  (* retries re-enter past the bound *)
  Jobq.force_push q ~priority:0 ~seq:4 "d";
  Alcotest.(check int) "forced depth" 3 (Jobq.depth q)

let test_jobq_ordering () =
  let q = Jobq.create ~limit:10 in
  ignore (Jobq.push q ~priority:0 ~seq:1 "low-first");
  ignore (Jobq.push q ~priority:5 ~seq:2 "high-a");
  ignore (Jobq.push q ~priority:5 ~seq:3 "high-b");
  ignore (Jobq.push q ~priority:0 ~seq:4 "low-second");
  let order = List.init 4 (fun _ -> Option.get (Jobq.pop q)) in
  Alcotest.(check (list string))
    "priority desc, FIFO within a priority"
    [ "high-a"; "high-b"; "low-first"; "low-second" ]
    order

let test_jobq_backoff () =
  let q = Jobq.create ~limit:4 in
  let t0 = Unix.gettimeofday () in
  Jobq.force_push q ~priority:0 ~seq:1 ~ready_s:(t0 +. 0.15) "later";
  ignore (Jobq.push q ~priority:0 ~seq:2 "now");
  Alcotest.(check string) "eligible entry first" "now" (Option.get (Jobq.pop q));
  Alcotest.(check string) "backed-off entry held" "later"
    (Option.get (Jobq.pop q));
  let waited = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "pop waited for ready time (%.3fs)" waited)
    true (waited >= 0.14)

(* try_pop is the select loop's non-blocking variant: it must never
   wait, handing back None when only backing-off entries exist. *)
let test_jobq_try_pop () =
  let q = Jobq.create ~limit:4 in
  Alcotest.(check bool) "empty -> None" true (Jobq.try_pop q = None);
  ignore (Jobq.push q ~priority:0 ~seq:1 "now");
  Jobq.force_push q ~priority:9 ~seq:2
    ~ready_s:(Unix.gettimeofday () +. 0.2)
    "later";
  Alcotest.(check (option string)) "ready entry pops" (Some "now")
    (Jobq.try_pop q);
  let t0 = Unix.gettimeofday () in
  let r = Jobq.try_pop q in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check (option string)) "backing-off entry is not ready" None r;
  Alcotest.(check bool) "try_pop did not block" true (dt < 0.1);
  Unix.sleepf 0.25;
  Alcotest.(check (option string)) "ready after its backoff" (Some "later")
    (Jobq.try_pop q);
  Jobq.close q;
  ignore (Jobq.push q ~priority:0 ~seq:3 "x");
  Alcotest.(check bool) "closed -> None" true (Jobq.try_pop q = None)

let test_jobq_close_drains () =
  let q = Jobq.create ~limit:4 in
  ignore (Jobq.push q ~priority:0 ~seq:1 "left-behind");
  Jobq.close q;
  (match Jobq.push q ~priority:0 ~seq:2 "refused" with
  | Jobq.Full _ -> ()
  | Jobq.Enqueued _ -> Alcotest.fail "closed queue accepted a push");
  Alcotest.(check bool) "pop on closed queue is None (drain)" true
    (Jobq.pop q = None);
  (* a blocked pop wakes up on close *)
  let q2 = Jobq.create ~limit:1 in
  let popper = Domain.spawn (fun () -> Jobq.pop q2) in
  Unix.sleepf 0.05;
  Jobq.close q2;
  Alcotest.(check bool) "blocked pop released" true (Domain.join popper = None)

(* ---- worker exit classification ----------------------------------- *)

(* classify is the daemon's whole theory of worker death: total over
   process statuses, watchdog kills outrank statuses, rlimit deaths
   never retry. *)
let test_worker_classify () =
  let cl ?(frame = None) ?(killed = None) ?(mem_limited = false) st =
    Worker.classify st ~frame ~killed ~mem_limited ~attempt:1
  in
  (match cl (Unix.WEXITED 0) with
  | Worker.Done -> ()
  | _ -> Alcotest.fail "exit 0 is done");
  (match cl (Unix.WEXITED 64) ~frame:(Some ("invalid", "bad netlist")) with
  | Worker.Invalid "bad netlist" -> ()
  | _ -> Alcotest.fail "exit 64 is invalid, frame detail preferred");
  (match cl (Unix.WEXITED 65) with
  | Worker.Timed_out _ -> ()
  | _ -> Alcotest.fail "exit 65 is timed-out");
  (match cl (Unix.WEXITED 66) with
  | Worker.Parked _ -> ()
  | _ -> Alcotest.fail "exit 66 is parked");
  (match cl (Unix.WEXITED 67) with
  | Worker.Transient _ -> ()
  | _ -> Alcotest.fail "exit 67 is transient");
  (match cl (Unix.WEXITED 68) with
  | Worker.Rlimit _ -> ()
  | _ -> Alcotest.fail "exit 68 is rlimit");
  (* unclassified exits and signals are lost workers *)
  (match cl (Unix.WEXITED 1) with
  | Worker.Lost _ -> ()
  | _ -> Alcotest.fail "exit 1 is lost");
  (match cl (Unix.WSIGNALED Sys.sigkill) with
  | Worker.Lost m ->
    Alcotest.(check bool) "SIGKILL named" true
      (Astring.String.is_infix ~affix:"SIGKILL" m)
  | _ -> Alcotest.fail "SIGKILL is lost");
  (* rlimit deaths *)
  (match cl (Unix.WSIGNALED Sys.sigxcpu) with
  | Worker.Rlimit _ -> ()
  | _ -> Alcotest.fail "SIGXCPU is rlimit");
  (match cl (Unix.WSIGNALED Sys.sigabrt) ~mem_limited:true with
  | Worker.Rlimit _ -> ()
  | _ -> Alcotest.fail "frameless SIGABRT under a mem limit is rlimit");
  (match cl (Unix.WSIGNALED Sys.sigabrt) with
  | Worker.Lost _ -> ()
  | _ -> Alcotest.fail "SIGABRT without a mem limit is lost");
  (match cl (Unix.WEXITED 125) ~mem_limited:true with
  | Worker.Rlimit _ -> ()
  | _ -> Alcotest.fail "fatal-error exit under a mem limit is rlimit");
  (* watchdog kills outrank the raw status *)
  (match cl (Unix.WSIGNALED Sys.sigkill) ~killed:(Some (Worker.Kill_deadline 2.0)) with
  | Worker.Timed_out _ -> ()
  | _ -> Alcotest.fail "deadline kill is timed-out");
  match cl (Unix.WSIGNALED Sys.sigkill) ~killed:(Some (Worker.Kill_hang 1.0)) with
  | Worker.Lost _ -> ()
  | _ -> Alcotest.fail "hang kill is lost (retry)"

(* The two worker-death fault sites ride the same registry as every
   other site: listed, documented, parseable from HIDAP_FAULT. *)
let test_worker_fault_sites_registered () =
  List.iter
    (fun site ->
      Alcotest.(check bool) (site ^ " registered") true
        (List.mem_assoc site Guard.Fault.sites))
    [ "serve.worker"; "serve.worker_kill"; "serve.worker_hang" ];
  match Guard.Fault.parse "serve.worker_kill:1,serve.worker_hang:2" with
  | Ok [ a; b ] ->
    Alcotest.(check string) "site a" "serve.worker_kill" a.Guard.Fault.site;
    Alcotest.(check string) "site b" "serve.worker_hang" b.Guard.Fault.site
  | Ok _ -> Alcotest.fail "wrong spec count"
  | Error m -> Alcotest.failf "spec refused: %s" m

(* ---- end-to-end daemon -------------------------------------------- *)

let test_serve_done_result_report () =
  let d = start (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  ok (Serve.Client.ping cl);
  let id = submit_ok cl (fig1_submit ()) in
  Alcotest.(check string) "first id" "j0001" id;
  (match wait_state cl id with
  | P.Done -> ()
  | s -> Alcotest.failf "job ended %s" (P.state_to_string s));
  (* the QoR ledger and the HTML report are served back *)
  let qor = ok (Serve.Client.result cl id) in
  (match J.member "records" qor with
  | Some (J.List [ _ ]) -> ()
  | _ -> Alcotest.fail "result is not a one-record ledger");
  let html = ok (Serve.Client.report cl id) in
  Alcotest.(check bool) "report looks like html" true
    (String.length html > 0
    && Astring.String.is_infix ~affix:"<html" (String.lowercase_ascii html));
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "accepted" 1 s.P.accepted;
  Alcotest.(check int) "completed" 1 s.P.completed;
  Alcotest.(check int) "one worker slot" 1 (List.length s.P.workers);
  (* result of a non-existent job is a structured error *)
  (match Serve.Client.result cl "j9999" with
  | Error e when not (Serve.Client.is_conn e) -> ()
  | Error _ -> Alcotest.fail "unknown-job error misclassified as conn"
  | Ok _ -> Alcotest.fail "result for unknown job succeeded");
  Serve.Client.close cl

let test_serve_deadline_lands_timed_out () =
  let d = start (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id = submit_ok cl (fig1_submit ~deadline_s:0.0005 ~label:"doomed" ()) in
  (match wait_state cl id with
  | P.Timed_out -> ()
  | s -> Alcotest.failf "deadline job ended %s" (P.state_to_string s));
  (* the blast radius is one job: the next one completes normally *)
  let id2 = submit_ok cl (fig1_submit ~label:"fine" ()) in
  (match wait_state cl id2 with
  | P.Done -> ()
  | s -> Alcotest.failf "follow-up job ended %s" (P.state_to_string s));
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "timed_out" 1 s.P.timed_out;
  Alcotest.(check int) "completed" 1 s.P.completed;
  Serve.Client.close cl

let test_serve_backpressure () =
  (* Stall the worker on its first job so submissions pile up behind a
     queue bound of 1: the third submit must be refused, structured. *)
  let d = start ~queue_limit:1 ~fault:"serve.worker:1:stall=0.6" (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id1 = submit_ok cl (fig1_submit ~label:"stalled" ()) in
  Unix.sleepf 0.2 (* let a worker claim it and hit the stall *);
  let id2 = submit_ok cl (fig1_submit ~label:"queued" ()) in
  (match ok (Serve.Client.submit cl (fig1_submit ~label:"refused" ())) with
  | `Rejected ("backpressure", depth, limit) ->
    Alcotest.(check int) "depth at refusal" 1 depth;
    Alcotest.(check int) "limit reported" 1 limit
  | `Rejected (r, _, _) -> Alcotest.failf "wrong rejection reason %s" r
  | `Accepted _ -> Alcotest.fail "overfull submit accepted");
  (* both admitted jobs still finish *)
  List.iter
    (fun id ->
      match wait_state cl id with
      | P.Done -> ()
      | s -> Alcotest.failf "%s ended %s" id (P.state_to_string s))
    [ id1; id2 ];
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "rejections counted" 1 s.P.rejected_backpressure;
  Serve.Client.close cl

let test_serve_retry_then_done () =
  (* Transient serve.worker fault: attempt 1's worker dies at start,
     the retry heals. The hit is counted in the daemon, so one spec
     spans both worker processes. *)
  let d = start ~fault:"serve.worker:1" (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id = submit_ok cl (fig1_submit ~max_retries:2 ()) in
  let v = ok (Serve.Client.wait cl id) in
  (match v.P.state with
  | P.Done -> ()
  | s -> Alcotest.failf "retried job ended %s" (P.state_to_string s));
  Alcotest.(check int) "two attempts" 2 v.P.attempts;
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "retried" 1 s.P.retried;
  Serve.Client.close cl

let test_serve_fails_after_retry_budget () =
  let d = start ~fault:"serve.worker:99" (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id = submit_ok cl (fig1_submit ~max_retries:1 ()) in
  let v = ok (Serve.Client.wait cl id) in
  (match v.P.state with
  | P.Failed -> ()
  | s -> Alcotest.failf "exhausted job ended %s" (P.state_to_string s));
  Alcotest.(check int) "initial attempt + one retry" 2 v.P.attempts;
  Serve.Client.close cl

(* serve.worker_kill: the worker SIGKILLs itself mid-job. The daemon
   must classify the signaled exit as worker-lost, retry, and stay
   fully serviceable. *)
let test_serve_worker_killed_retries () =
  let d = start ~fault:"serve.worker_kill:1" (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id = submit_ok cl (fig1_submit ~max_retries:1 ()) in
  let v = ok (Serve.Client.wait cl id) in
  (match v.P.state with
  | P.Done -> ()
  | s -> Alcotest.failf "killed-worker job ended %s" (P.state_to_string s));
  Alcotest.(check int) "two attempts" 2 v.P.attempts;
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "worker_lost counted" 1 s.P.worker_lost;
  Alcotest.(check int) "retried" 1 s.P.retried;
  (* without retry budget the same death is terminal, daemon unharmed *)
  Serve.Client.close cl

(* serve.worker_hang: the worker goes silent before its first stream
   byte. Only the hung-job watchdog can end it; the job then retries. *)
let test_serve_worker_hang_watchdog () =
  let d = start ~fault:"serve.worker_hang:1" ~job_stall_s:0.8 (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id = submit_ok cl (fig1_submit ~max_retries:1 ()) in
  let v = ok (Serve.Client.wait ~timeout_s:30.0 cl id) in
  (match v.P.state with
  | P.Done -> ()
  | s -> Alcotest.failf "hung-worker job ended %s" (P.state_to_string s));
  Alcotest.(check int) "two attempts" 2 v.P.attempts;
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "worker_lost counted" 1 s.P.worker_lost;
  Serve.Client.close cl

(* --job-cpu-s: CPU exhaustion is SIGXCPU, classified rlimit, and
   deterministic — so the job fails without burning its retry budget.
   The bound must separate the two jobs cleanly: fig1 burns ~1s of
   CPU, c5 far more, so 3s fails only c5. *)
let test_serve_cpu_rlimit () =
  let d = start ~job_cpu_s:3 (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id = submit_ok cl (c5_submit ~max_retries:3 ()) in
  let v = ok (Serve.Client.wait ~timeout_s:60.0 cl id) in
  (match v.P.state with
  | P.Failed -> ()
  | s -> Alcotest.failf "cpu-limited job ended %s" (P.state_to_string s));
  Alcotest.(check int) "rlimit failure never retries" 1 v.P.attempts;
  Alcotest.(check bool) "detail names the rlimit" true
    (Astring.String.is_infix ~affix:"rlimit" v.P.detail);
  (* the daemon and the next job are untouched *)
  let id2 = submit_ok cl (fig1_submit ()) in
  (match wait_state cl id2 with
  | P.Done -> ()
  | s -> Alcotest.failf "follow-up job ended %s" (P.state_to_string s));
  Serve.Client.close cl

let test_serve_invalid_submissions () =
  let d = start (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  (* neither circuit nor hnl: refused at the door *)
  (match Serve.Client.submit cl P.default_submit with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty submit accepted");
  (* unparseable netlist: accepted, then fails terminally without retry *)
  let id =
    submit_ok cl
      { P.default_submit with P.hnl = Some "not a netlist"; max_retries = 5 }
  in
  let v = ok (Serve.Client.wait cl id) in
  (match v.P.state with
  | P.Failed -> ()
  | s -> Alcotest.failf "invalid job ended %s" (P.state_to_string s));
  Alcotest.(check int) "invalid jobs never retry" 1 v.P.attempts;
  Serve.Client.close cl

let test_serve_watch_streams_progress () =
  let d = start (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let id = submit_ok cl (fig1_submit ()) in
  let events = ref 0 in
  let v =
    ok
      (Serve.Client.watch cl id ~on_event:(fun e ->
           (* relayed events are hidap-progress documents *)
           (match J.member "schema" e with
           | Some (J.String "hidap-progress") -> ()
           | _ -> Alcotest.fail "relayed event is not a progress document");
           incr events))
  in
  (match v.P.state with
  | P.Done -> ()
  | s -> Alcotest.failf "watched job ended %s" (P.state_to_string s));
  Alcotest.(check bool)
    (Printf.sprintf "progress events relayed (%d)" !events)
    true (!events > 0);
  Serve.Client.close cl

(* ---- multi-client stress ------------------------------------------- *)

(* 4 clients, 20 jobs each, 2 workers: every job accepted exactly once,
   every job completes, every result decodes, nothing lost or
   duplicated across the concurrent conversations. *)
let test_serve_stress_multi_client () =
  let d = start ~workers:2 ~queue_limit:100 (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let clients = List.init 4 (fun _ -> connect d) in
  let ids =
    List.concat_map
      (fun cl ->
        List.init 20 (fun i ->
            submit_ok cl (fig1_submit ~seed:(1 + (i mod 5)) ~label:"stress" ())))
      clients
  in
  Alcotest.(check int) "80 jobs accepted" 80 (List.length ids);
  let uniq = List.sort_uniq compare ids in
  Alcotest.(check int) "no duplicate ids" 80 (List.length uniq);
  let cl0 = List.hd clients in
  List.iter
    (fun id ->
      match ok (Serve.Client.wait ~timeout_s:300.0 cl0 id) with
      | { P.state = P.Done; _ } -> ()
      | v -> Alcotest.failf "%s ended %s (%s)" id (P.state_to_string v.P.state) v.P.detail)
    ids;
  (* every result decodes as a one-record ledger *)
  List.iter
    (fun id ->
      match J.member "records" (ok (Serve.Client.result cl0 id)) with
      | Some (J.List [ _ ]) -> ()
      | _ -> Alcotest.failf "%s: result does not decode" id)
    ids;
  let s = ok (Serve.Client.stats cl0) in
  Alcotest.(check int) "all completed" 80 s.P.completed;
  Alcotest.(check int) "none lost" 0 s.P.worker_lost;
  Alcotest.(check int) "none failed" 0 s.P.failed;
  List.iter Serve.Client.close clients

(* ---- worker SIGKILL mid-job: bit-identical retry ------------------- *)

let record_macros_of_json doc =
  match J.member "records" doc with
  | Some (J.List [ r ]) -> (
    match J.member "macros" r with
    | Some m -> m
    | None -> Alcotest.fail "no macros in record")
  | _ -> Alcotest.fail "not a one-record ledger"

(* An external kill -9 of a worker mid-c5 must leave the daemon
   serviceable, retry the job, and — thanks to the per-job checkpoint
   store — produce macros bit-identical to an uninterrupted control
   run of the same spec. *)
let test_serve_worker_sigkill_bit_identical () =
  let d = start (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  (* control: uninterrupted run *)
  let control = submit_ok cl (c5_submit ()) in
  (match wait_state ~timeout_s:300.0 cl control with
  | P.Done -> ()
  | s -> Alcotest.failf "control ended %s" (P.state_to_string s));
  let control_macros = record_macros_of_json (ok (Serve.Client.result cl control)) in
  (* victim: same spec, worker killed mid-flight *)
  let victim = submit_ok cl (c5_submit ~max_retries:1 ()) in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec find_pid () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "victim's worker never appeared in stats"
    else
      let s = ok (Serve.Client.stats cl) in
      match
        List.find_opt (fun w -> w.P.job = Some victim) s.P.workers
      with
      | Some { P.pid = Some pid; _ } -> pid
      | _ ->
        Unix.sleepf 0.05;
        find_pid ()
  in
  let pid = find_pid () in
  Unix.sleepf 1.5 (* let it get mid-SA, past a checkpoint *);
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  let v = ok (Serve.Client.wait ~timeout_s:300.0 cl victim) in
  (match v.P.state with
  | P.Done -> ()
  | s -> Alcotest.failf "victim ended %s (%s)" (P.state_to_string s) v.P.detail);
  Alcotest.(check int) "victim retried" 2 v.P.attempts;
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "worker_lost counted" 1 s.P.worker_lost;
  let victim_macros = record_macros_of_json (ok (Serve.Client.result cl victim)) in
  Alcotest.(check bool) "retried placement bit-identical to control" true
    (victim_macros = control_macros);
  (* daemon still fully serviceable *)
  let id = submit_ok cl (fig1_submit ()) in
  (match wait_state cl id with
  | P.Done -> ()
  | s -> Alcotest.failf "post-kill job ended %s" (P.state_to_string s));
  Serve.Client.close cl

(* ---- framing fuzz -------------------------------------------------- *)

let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  fd

let raw_send fd s =
  let rec go off =
    if off < String.length s then
      go (off + Unix.write_substring fd s off (String.length s - off))
  in
  (* the daemon is allowed to drop the connection mid-write *)
  try go 0 with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

(* Read one response line; [None] on clean disconnect or timeout. *)
let raw_recv_line fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | _ ->
      if Bytes.get b 0 = '\n' then Some (Buffer.contents buf)
      else begin
        Buffer.add_char buf (Bytes.get b 0);
        go ()
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> None
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> None
  in
  go ()

let test_serve_framing_fuzz () =
  (* the bound must clear the inline-HNL submit used at the end, so
     real work still fits while the oversized probes do not *)
  let submit_len =
    String.length (P.to_line (P.request_to_json (P.Submit (fig1_submit ()))))
  in
  let max_line_bytes = max 1024 (4 * submit_len) in
  let d = start ~max_line_bytes (scratch ()) in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let assert_alive tag =
    let cl = connect d in
    (match Serve.Client.ping cl with
    | Ok () -> ()
    | Error e ->
      Alcotest.failf "daemon dead after %s: %s" tag (Serve.Client.error_message e));
    Serve.Client.close cl
  in
  let expect_error tag line =
    let fd = raw_connect d.sock in
    raw_send fd line;
    (match raw_recv_line fd with
    | None -> () (* clean disconnect is an acceptable answer *)
    | Some reply -> (
      match P.response_of_line reply with
      | Ok (P.Error_reply _) -> ()
      | Ok r ->
        Alcotest.failf "%s answered %s" tag
          (J.to_string ~compact:true (P.response_to_json r))
      | Error msg -> Alcotest.failf "%s: unparseable reply %s" tag msg));
    (try Unix.close fd with Unix.Unix_error _ -> ());
    assert_alive tag
  in
  expect_error "garbage" "complete garbage\n";
  expect_error "wrong schema" ({|{"schema":"mqtt","version":1,"req":"ping"}|} ^ "\n");
  expect_error "newer version" {|{"schema":"hidap-serve","version":42,"req":"ping"}
|};
  expect_error "unknown request" {|{"schema":"hidap-serve","version":1,"req":"?"}
|};
  expect_error "oversized line" (String.make (max_line_bytes + 1024) 'a' ^ "\n");
  (* oversized with no terminator at all: the buffer bound trips *)
  expect_error "oversized unterminated" (String.make (2 * max_line_bytes) 'b');
  (* truncated request then hard disconnect *)
  let fd = raw_connect d.sock in
  raw_send fd {|{"schema":"hidap-serve","ver|};
  Unix.close fd;
  assert_alive "truncated disconnect";
  (* random bytes, many connections *)
  let rng = Util.Rng.create 0xFA22 in
  for _ = 1 to 25 do
    let n = 1 + Util.Rng.int rng 600 in
    let b = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set b i (Char.chr (Util.Rng.int rng 256))
    done;
    let fd = raw_connect d.sock in
    raw_send fd (Bytes.to_string b);
    raw_send fd "\n";
    ignore (raw_recv_line fd);
    try Unix.close fd with Unix.Unix_error _ -> ()
  done;
  assert_alive "random bytes";
  (* and after all that abuse, real work still goes through *)
  let cl = connect d in
  let id = submit_ok cl (fig1_submit ()) in
  (match wait_state cl id with
  | P.Done -> ()
  | s -> Alcotest.failf "post-fuzz job ended %s" (P.state_to_string s));
  Serve.Client.close cl

(* ---- drain / park / resume ---------------------------------------- *)

let record_macros path =
  match J.parse_file path with
  | Error msg -> Alcotest.failf "%s: %s" path msg
  | Ok doc -> record_macros_of_json doc

let record_resumed_from path =
  match J.parse_file path with
  | Error msg -> Alcotest.failf "%s: %s" path msg
  | Ok doc -> (
    match J.member "records" doc with
    | Some (J.List [ r ]) -> (
      match J.member "ckpt" r with
      | Some ck -> J.member "resumed_from" ck
      | None -> None)
    | _ -> None)

(* SIGTERM mid-job: the drain's second phase asks the worker to
   checkpoint and park; a new daemon on the same state dir resumes it
   to a placement bit-identical to a control run of the same spec. c1
   runs long enough to be caught mid-SA. *)
let test_serve_drain_parks_then_resumes () =
  let dir = scratch () in
  let spec = c1_submit () in
  let d1 = start ~drain_grace_s:0.05 dir in
  let id =
    let cl = connect d1 in
    let id = submit_ok cl spec in
    Unix.sleepf 0.4 (* let the job get mid-flow *);
    Serve.Client.close cl;
    stop d1 (* SIGTERM; graceful -> term -> the worker parks *);
    id
  in
  (* the daemon is gone; the parked job survives on disk *)
  (match Serve.Job.load ~state_dir:d1.state_dir id with
  | Ok j ->
    (match j.Serve.Job.state with
    | P.Parked -> ()
    | P.Done ->
      (* the machine outran the sleep: the job finished inside the
         grace window, which is also a correct drain. Nothing to
         resume, so the rest of this test has no subject. *)
      Alcotest.skip ()
    | s -> Alcotest.failf "after drain the job is %s" (P.state_to_string s))
  | Error msg -> Alcotest.failf "parked job unreadable: %s" msg);
  (* restart on the same state dir: the job resumes and completes *)
  let d2 = start dir in
  Fun.protect ~finally:(fun () -> try stop d2 with _ -> ()) @@ fun () ->
  let cl = connect d2 in
  let control = submit_ok cl spec in
  (match wait_state ~timeout_s:300.0 cl control with
  | P.Done -> ()
  | s -> Alcotest.failf "control job ended %s" (P.state_to_string s));
  let v = ok (Serve.Client.wait ~timeout_s:300.0 cl id) in
  (match v.P.state with
  | P.Done -> ()
  | s -> Alcotest.failf "resumed job ended %s" (P.state_to_string s));
  let resumed = Serve.Job.result_path ~state_dir:d2.state_dir id in
  let fresh = Serve.Job.result_path ~state_dir:d2.state_dir control in
  (match record_resumed_from resumed with
  | Some J.Null | None ->
    Alcotest.fail "resumed job did not restart from a checkpoint"
  | Some _ -> ());
  Alcotest.(check bool) "resumed placement bit-identical to control" true
    (record_macros resumed = record_macros fresh);
  Serve.Client.close cl

(* kill -9 the daemon mid-job: the next daemon on the same state dir
   finds a stale socket (probed dead, unlinked) and a running-state
   job (recovered as pending, completed). Satellite: stale-socket
   recovery composed with crash recovery. *)
let test_serve_kill9_stale_socket_recovery () =
  let dir = scratch () in
  let d1 = start dir in
  let id =
    let cl = connect d1 in
    let id = submit_ok cl (c1_submit ()) in
    Unix.sleepf 0.2 (* let a worker claim it *);
    Serve.Client.close cl;
    id
  in
  kill9 d1;
  Alcotest.(check bool) "socket file left behind" true (Sys.file_exists d1.sock);
  (* same socket path: the new daemon probes, unlinks, binds *)
  let d2 = start dir in
  Fun.protect ~finally:(fun () -> try stop d2 with _ -> ()) @@ fun () ->
  let cl = connect d2 in
  let v = ok (Serve.Client.wait ~timeout_s:300.0 cl id) in
  (match v.P.state with
  | P.Done -> ()
  | s -> Alcotest.failf "recovered job ended %s" (P.state_to_string s));
  Alcotest.(check bool) "stale socket was reported" true
    (Astring.String.is_infix ~affix:"stale socket" (dump_log d2));
  Serve.Client.close cl

(* A second daemon must refuse to steal a live daemon's socket, with
   the serve-socket-busy diag and the daemon exit code. *)
let test_serve_socket_busy_refused () =
  let dir = scratch () in
  let d = start dir in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let dir2 = scratch () in
  let log2 = Filename.concat dir2 "serve2.log" in
  let logfd = Unix.openfile log2 [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  let pid =
    Unix.create_process (Lazy.force cli)
      [| Lazy.force cli; "serve"; "--socket"; d.sock; "--state-dir";
         Filename.concat dir2 "state" |]
      Unix.stdin logfd logfd
  in
  Unix.close logfd;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 7 -> ()
  | _, Unix.WEXITED c -> Alcotest.failf "second daemon exited %d, wanted 7" c
  | _ -> Alcotest.fail "second daemon died of a signal");
  let log2c =
    let ic = open_in log2 in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  Alcotest.(check bool) "structured serve-socket-busy diag" true
    (Astring.String.is_infix ~affix:"serve-socket-busy" log2c);
  (* the first daemon is unharmed *)
  let cl = connect d in
  ok (Serve.Client.ping cl);
  Serve.Client.close cl

(* crash recovery of a job.json left in running state with no
   checkpoint at all (the worker never got that far). *)
let test_serve_crash_recovery () =
  let dir = scratch () in
  let state_dir = Filename.concat dir "state" in
  let j = Serve.Job.make ~seq:1 (fig1_submit ()) in
  j.Serve.Job.state <- P.Running;
  j.Serve.Job.attempts <- 1;
  Serve.Job.save ~state_dir j;
  let d = start dir in
  Fun.protect ~finally:(fun () -> try stop d with _ -> ()) @@ fun () ->
  let cl = connect d in
  let v = ok (Serve.Client.wait cl j.Serve.Job.id) in
  (match v.P.state with
  | P.Done -> ()
  | s -> Alcotest.failf "recovered job ended %s" (P.state_to_string s));
  Alcotest.(check bool) "recovery noted in detail" true
    (Astring.String.is_infix ~affix:"recover" v.P.detail);
  let s = ok (Serve.Client.stats cl) in
  Alcotest.(check int) "completed after recovery" 1 s.P.completed;
  Serve.Client.close cl

(* The daemon dying mid-conversation surfaces as a typed Conn error,
   never an exception or a hang. *)
let test_serve_daemon_death_is_conn_error () =
  let d = start (scratch ()) in
  let cl = connect d in
  let id = submit_ok cl (c5_submit ()) in
  ignore id;
  kill9 d;
  (match Serve.Client.stats cl with
  | Error e ->
    Alcotest.(check bool) "typed as conn" true (Serve.Client.is_conn e)
  | Ok _ -> Alcotest.fail "stats on a dead daemon succeeded");
  Serve.Client.close cl;
  (try Sys.remove d.sock with Sys_error _ -> ())

(* Draining refuses new work with its own structured reason. *)
let test_serve_draining_rejects () =
  (* hold a worker busy so the daemon survives long enough to answer *)
  let d = start ~fault:"serve.worker:1:stall=1.5" ~drain_grace_s:3.0 (scratch ()) in
  let cl = connect d in
  let _busy = submit_ok cl (fig1_submit ~label:"busy" ()) in
  Unix.sleepf 0.2;
  ok (Serve.Client.drain cl);
  (match Serve.Client.submit cl (fig1_submit ()) with
  | Ok (`Rejected ("draining", _, _)) -> ()
  | Ok (`Rejected (r, _, _)) -> Alcotest.failf "wrong rejection %s" r
  | Ok (`Accepted _) -> Alcotest.fail "draining daemon accepted a job"
  | Error _ -> () (* the daemon may already have shut the socket *));
  Serve.Client.close cl;
  match wait_exit d with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.failf "drained daemon did not exit 0:\n%s" (dump_log d)

let suite =
  [ ( "serve",
      [ Alcotest.test_case "proto request round-trip" `Quick
          test_proto_request_roundtrip;
        Alcotest.test_case "proto response round-trip" `Quick
          test_proto_response_roundtrip;
        Alcotest.test_case "proto envelope checks" `Quick test_proto_envelope;
        Alcotest.test_case "proto decoding is total" `Quick
          test_proto_decode_total;
        Alcotest.test_case "jobq admission bound" `Quick test_jobq_admission;
        Alcotest.test_case "jobq priority + FIFO" `Quick test_jobq_ordering;
        Alcotest.test_case "jobq retry backoff" `Quick test_jobq_backoff;
        Alcotest.test_case "jobq try_pop never blocks" `Quick test_jobq_try_pop;
        Alcotest.test_case "jobq close means drain" `Quick
          test_jobq_close_drains;
        Alcotest.test_case "worker exit classification is total" `Quick
          test_worker_classify;
        Alcotest.test_case "worker fault sites registered" `Quick
          test_worker_fault_sites_registered;
        Alcotest.test_case "job done, result and report served" `Slow
          test_serve_done_result_report;
        Alcotest.test_case "deadline lands in timed-out" `Slow
          test_serve_deadline_lands_timed_out;
        Alcotest.test_case "backpressure rejection at the bound" `Slow
          test_serve_backpressure;
        Alcotest.test_case "transient fault retries then done" `Slow
          test_serve_retry_then_done;
        Alcotest.test_case "retry budget exhausts to failed" `Slow
          test_serve_fails_after_retry_budget;
        Alcotest.test_case "worker SIGKILL is contained and retried" `Slow
          test_serve_worker_killed_retries;
        Alcotest.test_case "hung worker killed by watchdog" `Slow
          test_serve_worker_hang_watchdog;
        Alcotest.test_case "cpu rlimit fails without retry" `Slow
          test_serve_cpu_rlimit;
        Alcotest.test_case "invalid submissions fail fast" `Slow
          test_serve_invalid_submissions;
        Alcotest.test_case "watch streams progress" `Slow
          test_serve_watch_streams_progress;
        Alcotest.test_case "multi-client stress: 4x20 jobs, 2 workers" `Slow
          test_serve_stress_multi_client;
        Alcotest.test_case "worker kill -9 mid-c5 retries bit-identically" `Slow
          test_serve_worker_sigkill_bit_identical;
        Alcotest.test_case "framing fuzz never kills the daemon" `Slow
          test_serve_framing_fuzz;
        Alcotest.test_case "drain parks, restart resumes bit-identically" `Slow
          test_serve_drain_parks_then_resumes;
        Alcotest.test_case "kill -9: stale socket + crash recovery" `Slow
          test_serve_kill9_stale_socket_recovery;
        Alcotest.test_case "live socket refused with busy diag" `Slow
          test_serve_socket_busy_refused;
        Alcotest.test_case "crash recovery completes the job" `Slow
          test_serve_crash_recovery;
        Alcotest.test_case "daemon death is a typed conn error" `Slow
          test_serve_daemon_death_is_conn_error;
        Alcotest.test_case "draining rejects new work" `Slow
          test_serve_draining_rejects ] ) ]
