(* Tests for the HNL lexer, parser and printer. *)

module L = Hnl.Lexer
module P = Hnl.Parser
module D = Netlist.Design

let tokens src = List.map fst (L.tokenize src)

let test_lexer_basic () =
  Alcotest.(check int) "token count" 6
    (List.length (tokens "design top module x {"));
  match tokens "design top" with
  | [ L.Kw_design; L.Ident "top"; L.Eof ] -> ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_keywords () =
  (match tokens "macro flop comb inst size area in out input output" with
  | [ L.Kw_macro; L.Kw_flop; L.Kw_comb; L.Kw_inst; L.Kw_size; L.Kw_area; L.Kw_in;
      L.Kw_out; L.Kw_input; L.Kw_output; L.Eof ] -> ()
  | _ -> Alcotest.fail "keyword tokens wrong")

let test_lexer_punctuation () =
  match tokens "{ } ( ) ; , : =>" with
  | [ L.Lbrace; L.Rbrace; L.Lparen; L.Rparen; L.Semi; L.Comma; L.Colon; L.Arrow; L.Eof ] -> ()
  | _ -> Alcotest.fail "punct tokens wrong"

let test_lexer_numbers () =
  (match tokens "size 64 32.5" with
  | [ L.Kw_size; L.Number a; L.Number b; L.Eof ] ->
    Alcotest.(check (float 1e-9)) "int" 64.0 a;
    Alcotest.(check (float 1e-9)) "float" 32.5 b
  | _ -> Alcotest.fail "number tokens wrong")

let test_lexer_identifiers () =
  (match tokens "data[3] stage0_1 a/b.c" with
  | [ L.Ident "data[3]"; L.Ident "stage0_1"; L.Ident "a/b.c"; L.Eof ] -> ()
  | _ -> Alcotest.fail "ident tokens wrong")

let test_lexer_comments_and_lines () =
  let toks = L.tokenize "a # comment with module keyword\nb" in
  (match List.map fst toks with
  | [ L.Ident "a"; L.Ident "b"; L.Eof ] -> ()
  | _ -> Alcotest.fail "comment not skipped");
  (* token positions: both idents start their line, Eof sits after [b] *)
  match toks with
  | [ (_, { L.line = 1; col = 1 }); (_, { L.line = 2; col = 1 });
      (_, { L.line = 2; col = 2 }) ] ->
    ()
  | _ -> Alcotest.fail "token positions wrong"

let test_lexer_error () =
  match L.tokenize "a\n $" with
  | exception L.Lex_error { L.line = 2; col = 2; _ } -> ()
  | exception L.Lex_error { L.line; col; _ } ->
    Alcotest.failf "wrong position %d:%d" line col
  | _ -> Alcotest.fail "expected lex error"

let small_src =
  {|design top
module top {
  input a
  output z
  macro m size 8 4 (in a ; out q)
  flop r (in q ; out p)
  comb c area 2 (in p ; out z)
}|}

let test_parse_small () =
  match P.parse_string small_src with
  | Error e -> Alcotest.failf "parse failed at line %d: %s" e.P.line e.P.message
  | Ok d ->
    Alcotest.(check string) "top name" "top" d.D.top;
    (match D.find_module d "top" with
    | None -> Alcotest.fail "module missing"
    | Some m ->
      Alcotest.(check int) "ports" 2 (List.length m.D.ports);
      Alcotest.(check int) "cells" 3 (List.length m.D.cells);
      let macro = List.find (fun (c : D.cell_decl) -> c.D.cname = "m") m.D.cells in
      (match macro.D.ckind with
      | D.Macro { D.mw; mh } ->
        Alcotest.(check (float 1e-9)) "macro w" 8.0 mw;
        Alcotest.(check (float 1e-9)) "macro h" 4.0 mh
      | _ -> Alcotest.fail "expected macro kind");
      let comb = List.find (fun (c : D.cell_decl) -> c.D.cname = "c") m.D.cells in
      Alcotest.(check (float 1e-9)) "comb area" 2.0 comb.D.carea)

let test_parse_inst () =
  let src =
    {|design t
module sub { input i output o comb c (in i ; out o) }
module t { input x output y inst u : sub (i => x, o => y) }|}
  in
  match P.parse_string src with
  | Error e -> Alcotest.failf "parse failed: %s" e.P.message
  | Ok d ->
    (match D.find_module d "t" with
    | Some m ->
      Alcotest.(check int) "one inst" 1 (List.length m.D.insts);
      let i = List.hd m.D.insts in
      Alcotest.(check string) "inst module" "sub" i.D.imodule;
      Alcotest.(check (list (pair string string))) "bindings"
        [ ("i", "x"); ("o", "y") ] i.D.bindings
    | None -> Alcotest.fail "module t missing")

let test_parse_empty_pins () =
  let src = {|design t
module t { comb c () }|} in
  match P.parse_string src with
  | Ok d ->
    let m = Option.get (D.find_module d "t") in
    let c = List.hd m.D.cells in
    Alcotest.(check (list string)) "no ins" [] c.D.cins;
    Alcotest.(check (list string)) "no outs" [] c.D.couts
  | Error e -> Alcotest.failf "parse failed: %s" e.P.message

let expect_parse_error src name =
  match P.parse_string src with
  | Ok _ -> Alcotest.fail (name ^ ": expected parse error")
  | Error _ -> ()

let test_parse_errors () =
  expect_parse_error "module x {}" "missing design";
  expect_parse_error "design t\nmodule t {" "unclosed brace";
  expect_parse_error "design t\nmodule t { macro m (in a) }" "macro without size";
  expect_parse_error "design t\nmodule t { inst u sub () }" "inst without colon";
  expect_parse_error "design t\nmodule t { flop f in a ; out b ) }" "missing lparen"

let test_parse_error_line () =
  match P.parse_string "design t\nmodule t {\n  macro m (in a)\n}" with
  | Error e ->
    Alcotest.(check int) "error line" 3 e.P.line;
    Alcotest.(check int) "error col" 11 e.P.col
  | Ok _ -> Alcotest.fail "expected error"

let test_roundtrip_small () =
  let d = P.parse_exn small_src in
  let printed = Hnl.Printer.to_string d in
  let d2 = P.parse_exn printed in
  Alcotest.(check bool) "round trip equal" true (d = d2)

let test_roundtrip_generated () =
  (* full structural round-trip on a real generated design *)
  let d = Circuitgen.Suite.fig1_design () in
  let printed = Hnl.Printer.to_string d in
  match P.parse_string printed with
  | Error e -> Alcotest.failf "re-parse failed at line %d: %s" e.P.line e.P.message
  | Ok d2 ->
    Alcotest.(check bool) "identical design" true (d = d2);
    (* and the elaborations agree *)
    let f1 = Netlist.Flat.elaborate d and f2 = Netlist.Flat.elaborate d2 in
    Alcotest.(check int) "same node count" (Array.length f1.Netlist.Flat.nodes)
      (Array.length f2.Netlist.Flat.nodes);
    Alcotest.(check int) "same edges"
      (Graphlib.Digraph.edge_count f1.Netlist.Flat.gnet)
      (Graphlib.Digraph.edge_count f2.Netlist.Flat.gnet)

let test_roundtrip_fig2 () =
  let d = Circuitgen.Suite.fig2_system () in
  let d2 = P.parse_exn (Hnl.Printer.to_string d) in
  Alcotest.(check bool) "fig2 round trip" true (d = d2)

let test_parse_file () =
  let path = Filename.temp_file "hidap" ".hnl" in
  let oc = open_out path in
  output_string oc small_src;
  close_out oc;
  (match P.parse_file path with
  | Ok d -> Alcotest.(check string) "top from file" "top" d.D.top
  | Error e -> Alcotest.failf "parse_file failed: %s" e.P.message);
  Sys.remove path

let suite =
  [ ( "hnl.lexer",
      [ Alcotest.test_case "basic" `Quick test_lexer_basic;
        Alcotest.test_case "keywords" `Quick test_lexer_keywords;
        Alcotest.test_case "punctuation" `Quick test_lexer_punctuation;
        Alcotest.test_case "numbers" `Quick test_lexer_numbers;
        Alcotest.test_case "identifiers" `Quick test_lexer_identifiers;
        Alcotest.test_case "comments and lines" `Quick test_lexer_comments_and_lines;
        Alcotest.test_case "error reporting" `Quick test_lexer_error ] );
    ( "hnl.parser",
      [ Alcotest.test_case "small design" `Quick test_parse_small;
        Alcotest.test_case "instances" `Quick test_parse_inst;
        Alcotest.test_case "empty pins" `Quick test_parse_empty_pins;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "error line" `Quick test_parse_error_line;
        Alcotest.test_case "parse_file" `Quick test_parse_file ] );
    ( "hnl.roundtrip",
      [ Alcotest.test_case "small" `Quick test_roundtrip_small;
        Alcotest.test_case "generated fig1" `Quick test_roundtrip_generated;
        Alcotest.test_case "fig2 system" `Quick test_roundtrip_fig2 ] ) ]
