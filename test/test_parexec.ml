(* Tests for the deterministic fork-join pool: ordering, nesting,
   exception propagation, and the telemetry merge contract. *)

module P = Parexec

let jobs_under_test = [ 1; 2; 4 ]

let test_map_preserves_order () =
  List.iter
    (fun jobs ->
      let pool = P.create ~jobs () in
      let xs = Array.init 100 (fun i -> i) in
      let ys = P.map pool (fun i -> i * i) xs in
      Alcotest.(check (array int))
        (Printf.sprintf "squares in input order (jobs=%d)" jobs)
        (Array.map (fun i -> i * i) xs)
        ys)
    jobs_under_test

let test_create_clamps () =
  Alcotest.(check int) "at least one worker" 1 (P.jobs (P.create ~jobs:0 ()));
  Alcotest.(check int) "negative clamps to one" 1 (P.jobs (P.create ~jobs:(-3) ()));
  Alcotest.(check bool) "default is at least one" true
    (P.jobs (P.create ()) >= 1);
  Alcotest.(check int) "explicit count kept" 3 (P.jobs (P.create ~jobs:3 ()))

let test_nested_map_degrades () =
  (* A task that maps on the same pool must not spawn domains from a
     worker; the nested map runs sequentially and still returns the
     right values. *)
  let pool = P.create ~jobs:4 () in
  let ys =
    P.map pool
      (fun i -> Array.fold_left ( + ) 0 (P.map pool (fun j -> (10 * i) + j) (Array.init 5 Fun.id)))
      (Array.init 6 Fun.id)
  in
  Alcotest.(check (array int)) "nested results"
    (Array.init 6 (fun i -> (5 * 10 * i) + 10))
    ys

exception Boom of int

let test_exception_lowest_index () =
  List.iter
    (fun jobs ->
      let pool = P.create ~jobs () in
      let xs = Array.init 16 (fun i -> i) in
      match P.map pool (fun i -> if i mod 5 = 2 then raise (Boom i) else i) xs with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
        (* failures at 2, 7 and 12: the reported one is the earliest by
           task index, whatever the schedule *)
        Alcotest.(check int)
          (Printf.sprintf "lowest failing index (jobs=%d)" jobs)
          2 i)
    jobs_under_test

(* Telemetry merged at the join point must be identical for every job
   count: counters in full, span trees in task order. *)
let run_instrumented jobs =
  let registry = Obs.Metrics.create () in
  let spans =
    Obs.Metrics.with_ambient registry (fun () ->
        Obs.Metrics.set_enabled true;
        Fun.protect
          ~finally:(fun () -> Obs.Metrics.set_enabled false)
          (fun () ->
            Obs.Trace.start ();
            let pool = P.create ~jobs () in
            let (_ : int array) =
              P.map pool
                (fun i ->
                  Obs.Span.with_ ~name:(Printf.sprintf "task.%d" i) (fun () ->
                      Obs.Metrics.counter "tasks" 1;
                      Obs.Metrics.counter (Printf.sprintf "task.%d" i) (i + 1);
                      Obs.Metrics.series "order" ~x:(float_of_int i) ~y:0.0;
                      i))
                (Array.init 8 Fun.id)
            in
            Obs.Trace.finish ()))
  in
  (registry, spans)

let rec span_names (s : Obs.Span.t) =
  s.Obs.Span.name :: List.concat_map span_names s.Obs.Span.children

let test_telemetry_deterministic () =
  let r1, spans1 = run_instrumented 1 in
  let r4, spans4 = run_instrumented 4 in
  Alcotest.(check (list string)) "same metric names" (Obs.Metrics.names r1)
    (Obs.Metrics.names r4);
  List.iter
    (fun name ->
      Alcotest.(check (option int)) name
        (Obs.Metrics.counter_value r1 name)
        (Obs.Metrics.counter_value r4 name))
    (Obs.Metrics.names r1);
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "series points merged in task order"
    (Obs.Metrics.series_points r1 "order")
    (Obs.Metrics.series_points r4 "order");
  Alcotest.(check (list string)) "span trees in task order"
    (List.concat_map span_names spans1)
    (List.concat_map span_names spans4);
  Alcotest.(check int) "all tasks counted" 8
    (match Obs.Metrics.counter_value r1 "tasks" with Some n -> n | None -> 0)

let test_results_identical_across_jobs () =
  (* A pure computation gives bitwise-equal outputs regardless of the
     worker count. *)
  let compute jobs =
    let pool = P.create ~jobs () in
    P.map pool
      (fun i ->
        let rng = Util.Rng.create i in
        Util.Rng.float rng 1.0)
      (Array.init 32 Fun.id)
  in
  let base = compute 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "identical floats (jobs=%d)" jobs)
        true
        (compute jobs = base))
    jobs_under_test

let suite =
  [ ( "parexec.map",
      [ Alcotest.test_case "preserves order" `Quick test_map_preserves_order;
        Alcotest.test_case "create clamps" `Quick test_create_clamps;
        Alcotest.test_case "nested map degrades" `Quick test_nested_map_degrades;
        Alcotest.test_case "exception by lowest index" `Quick
          test_exception_lowest_index;
        Alcotest.test_case "telemetry deterministic" `Quick
          test_telemetry_deterministic;
        Alcotest.test_case "results identical across jobs" `Quick
          test_results_identical_across_jobs ] ) ]
