(* Kill-based crash-recovery harness.

   Proves the checkpoint resume contract the only way that counts: run
   `hidap place` as a child process with checkpointing on, SIGKILL it
   at a seeded-random point mid-flow, resume, repeat — and when a run
   finally completes, its saved placement must be byte-identical to an
   uninterrupted run's. No cooperation from the victim: the kill lands
   wherever the scheduler put it.

   Usage: crash_harness HIDAP_BIN [JOBS]
   JOBS defaults to $HIDAP_JOBS, then 1. Exit 0 on success. *)

let log fmt = Printf.eprintf ("crash_harness: " ^^ fmt ^^ "\n%!")

let fail fmt = Printf.ksprintf (fun s -> log "FAIL: %s" s; exit 1) fmt

(* Deterministic delays: SplitMix64-ish mixing, fixed seed, so a
   failing sequence of kill points can be replayed. *)
let rng_state = ref 0x2545F4914F6CDD1DL

let next_delay () =
  let s = Int64.add !rng_state 0x9E3779B97F4A7C15L in
  rng_state := s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let frac = Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0 in
  0.2 +. (frac *. 2.3)  (* 0.2s .. 2.5s into a ~5s run *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Work in $CRASH_HARNESS_DIR when set (CI uploads it as an artifact
   on failure), a temp dir otherwise. *)
let fresh_dir () =
  match Sys.getenv_opt "CRASH_HARNESS_DIR" with
  | Some dir ->
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    dir
  | None ->
    let dir = Filename.temp_file "hidap-crash" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    dir

let place_args ~hidap ~jobs ~save extra =
  Array.of_list
    ([ hidap; "place"; "-c"; "c1"; "--seed"; "7"; "-j"; string_of_int jobs;
       "--save"; save ]
    @ extra)

let spawn args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = Unix.create_process args.(0) args Unix.stdin devnull devnull in
  Unix.close devnull;
  pid

let run_to_completion args =
  let pid = spawn args in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> -1

(* Run the child and SIGKILL it after [delay] seconds. Returns [`Done
   code] when it beat the timer, [`Killed] when the kill landed. *)
let run_and_kill args ~delay =
  let pid = spawn args in
  let deadline = Unix.gettimeofday () +. delay in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () >= deadline then begin
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid);
        `Killed
      end
      else begin
        ignore (Unix.select [] [] [] 0.01);
        wait ()
      end
    | _, Unix.WEXITED code -> `Done code
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> `Done (-1)
  in
  wait ()

let () =
  let hidap = if Array.length Sys.argv > 1 then Sys.argv.(1) else fail "usage: crash_harness HIDAP_BIN [JOBS]" in
  let jobs =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else match Sys.getenv_opt "HIDAP_JOBS" with
      | Some s -> (try int_of_string s with _ -> 1)
      | None -> 1
  in
  let work = fresh_dir () in
  let clean_place = Filename.concat work "clean.place" in
  let out_place = Filename.concat work "out.place" in
  let ckpt_dir = Filename.concat work "ckpt" in
  log "jobs=%d work=%s" jobs work;

  (* 1. the uninterrupted reference run, no checkpointing at all *)
  let code = run_to_completion (place_args ~hidap ~jobs ~save:clean_place []) in
  if code <> 0 then fail "reference run exited %d" code;
  let reference = read_file clean_place in

  (* 2. kill/resume loop: every attempt passes --resume (an empty store
     starts fresh), so the same command line retries idempotently. *)
  let ckpt_args =
    place_args ~hidap ~jobs ~save:out_place
      [ "--checkpoint-dir"; ckpt_dir; "--checkpoint-every"; "1"; "--resume" ]
  in
  let kills = ref 0 in
  let completed = ref false in
  let attempts = ref 0 in
  while not !completed && !attempts < 25 do
    incr attempts;
    if !kills < 3 then begin
      match run_and_kill ckpt_args ~delay:(next_delay ()) with
      | `Killed ->
        incr kills;
        log "attempt %d: killed mid-run (%d so far)" !attempts !kills
      | `Done 0 ->
        (* beat the timer; accept the completion *)
        log "attempt %d: finished before the kill" !attempts;
        completed := true
      | `Done code -> fail "attempt %d: child exited %d" !attempts code
    end
    else begin
      match run_to_completion ckpt_args with
      | 0 -> completed := true
      | code -> fail "final attempt exited %d" code
    end
  done;
  if not !completed then fail "no attempt completed in %d tries" !attempts;
  if !kills = 0 then log "WARNING: child always finished before the kill; resume path unexercised";

  (* 3. the recovered placement must be byte-identical *)
  let recovered = read_file out_place in
  if not (String.equal reference recovered) then
    fail "recovered placement differs from the uninterrupted run (%d kills)" !kills;
  log "byte-identical after %d kill(s) and %d attempt(s)" !kills !attempts;

  (* 4. one more full-replay resume: everything comes from the store *)
  (match run_to_completion ckpt_args with
  | 0 -> ()
  | code -> fail "full-replay resume exited %d" code);
  if not (String.equal reference (read_file out_place)) then
    fail "full-replay resume placement differs";
  log "full-replay resume byte-identical";
  log "PASS"
