(* Exact cost-term attribution (DESIGN.md §13).

   The contract under test: the named breakdown terms sum to the
   annealer's scalar bit for bit; the per-pair wirelength shares fold
   back to the wirelength term bit for bit; the attributed layout
   evaluation is bit-identical to the plain one and its per-leaf
   charges reconcile with the violation totals; and neither the
   attribution nor the job count ever changes a placement. *)

module Rect = Geom.Rect
module Point = Geom.Point
module LG = Hidap.Layout_gen

let qtest ~count name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* Bit equality: float (=) would conflate -0.0 with 0.0 and is the
   wrong notion for a "bit for bit" contract. *)
let beq a b = Int64.bits_of_float a = Int64.bits_of_float b

let beq_breakdown (a : LG.breakdown) (b : LG.breakdown) =
  beq a.LG.bd_wirelength b.LG.bd_wirelength
  && beq a.LG.bd_at_penalty b.LG.bd_at_penalty
  && beq a.LG.bd_am_penalty b.LG.bd_am_penalty
  && beq a.LG.bd_macro_penalty b.LG.bd_macro_penalty
  && beq a.LG.bd_residual b.LG.bd_residual

(* Random layout instance: 1-8 blocks, 0-2 fixed endpoints, a budget
   the blocks may or may not fit (so every violation grade gets
   exercised), random symmetric affinity with zero entries. *)
let random_instance seed =
  let rng = Util.Rng.create seed in
  let n = 1 + Util.Rng.int rng 8 in
  let nf = Util.Rng.int rng 3 in
  let budget =
    Rect.make ~x:0.0 ~y:0.0
      ~w:(5.0 +. Util.Rng.float rng 45.0)
      ~h:(5.0 +. Util.Rng.float rng 45.0)
  in
  let blocks =
    Array.init n (fun i ->
        let am =
          1.0 +. Util.Rng.float rng (1.5 *. Rect.area budget /. float_of_int n)
        in
        { Hidap.Block.idx = i; ht_id = i; name = Printf.sprintf "b%d" i;
          curve = Shape.Curve.unconstrained;
          am;
          at = am *. (1.0 +. Util.Rng.float rng 0.5);
          macro_count = Util.Rng.int rng 3 })
  in
  let total = n + nf in
  let affinity = Array.make_matrix total total 0.0 in
  for i = 0 to total - 1 do
    for j = i + 1 to total - 1 do
      if Util.Rng.bool rng then begin
        let w = 0.1 +. Util.Rng.float rng 2.0 in
        affinity.(i).(j) <- w;
        affinity.(j).(i) <- w
      end
    done
  done;
  let fixed_pos =
    Array.init nf (fun _ ->
        Point.make (Util.Rng.float rng budget.Rect.w)
          (Util.Rng.float rng budget.Rect.h))
  in
  let expr = Slicing.Polish.initial_random rng ~n in
  (blocks, affinity, fixed_pos, budget, expr)

let seed_arb = QCheck.int_range 0 1_000_000

(* ---- decomposition exactness --------------------------------------- *)

let breakdown_sums_exactly =
  qtest ~count:200 "breakdown terms sum bit-exactly to the cost" seed_arb (fun seed ->
      let blocks, affinity, fixed_pos, budget, expr = random_instance seed in
      let r =
        LG.eval_expr ~config:Hidap.Config.default ~blocks ~affinity ~fixed_pos
          ~budget expr
      in
      beq (LG.breakdown_total r.LG.breakdown) r.LG.cost
      && List.map fst (LG.breakdown_terms r.LG.breakdown) = LG.term_names)

let pair_fold_exact =
  qtest ~count:200 "pair shares fold bit-exactly to the wirelength term" seed_arb
    (fun seed ->
      let blocks, affinity, fixed_pos, budget, expr = random_instance seed in
      let r =
        LG.eval_expr ~config:Hidap.Config.default ~blocks ~affinity ~fixed_pos
          ~budget expr
      in
      let pairs = r.LG.attribution.LG.attr_pairs in
      if Array.length pairs = 0 then
        (* no affinity pairs: the wirelength slot carries the 1.0
           legality bias and there is nothing to fold *)
        beq r.LG.breakdown.LG.bd_wirelength 1.0
      else
        beq
          (Array.fold_left (fun acc p -> acc +. p.LG.pc_wl) 0.0 pairs)
          r.LG.breakdown.LG.bd_wirelength)

(* ---- attributed layout evaluation ---------------------------------- *)

let attributed_eval_identical =
  qtest ~count:200 "evaluate_attributed is bit-identical and reconciles" seed_arb
    (fun seed ->
      let blocks, _, _, budget, expr = random_instance seed in
      let leaves = Array.map Hidap.Block.to_leaf blocks in
      let p = Slicing.Layout.evaluate expr ~leaves ~budget in
      let p2, per_leaf = Slicing.Layout.evaluate_attributed expr ~leaves ~budget in
      let close total parts =
        (* charges reconcile up to float rounding; the residual term
           absorbs the gap downstream *)
        abs_float (total -. parts) <= 1e-6 *. (1.0 +. abs_float total)
      in
      p = p2
      && close p.Slicing.Layout.viol.Slicing.Layout.at_shift
           (Array.fold_left
              (fun a v -> a +. v.Slicing.Layout.at_shift)
              0.0 per_leaf)
      && close p.Slicing.Layout.viol.Slicing.Layout.am_deficit
           (Array.fold_left
              (fun a v -> a +. v.Slicing.Layout.am_deficit)
              0.0 per_leaf)
      && close p.Slicing.Layout.viol.Slicing.Layout.macro_deficit
           (Array.fold_left
              (fun a v -> a +. v.Slicing.Layout.macro_deficit)
              0.0 per_leaf))

(* ---- job-count and observer neutrality ----------------------------- *)

let fast_config jobs =
  { Hidap.Config.default with
    Hidap.Config.jobs;
    sa_starts = 3;
    layout_sa = { Anneal.Sa.quick_params with Anneal.Sa.max_moves = 600 } }

let run_one seed ~jobs ~observe =
  let blocks, affinity, fixed_pos, budget, _ = random_instance seed in
  let observed = ref 0 in
  let term_observer =
    if observe then Some (fun _ (_ : LG.breakdown) -> incr observed) else None
  in
  let r =
    LG.run ?term_observer
      ~rng:(Util.Rng.create (seed + 7))
      ~config:(fast_config jobs) ~blocks ~affinity ~fixed_pos ~budget ()
  in
  (r, !observed, Array.length blocks)

let same_result (a : LG.result) (b : LG.result) =
  Array.length a.LG.rects = Array.length b.LG.rects
  && Array.for_all2
       (fun (ra : Rect.t) (rb : Rect.t) ->
         beq ra.Rect.x rb.Rect.x && beq ra.Rect.y rb.Rect.y
         && beq ra.Rect.w rb.Rect.w && beq ra.Rect.h rb.Rect.h)
       a.LG.rects b.LG.rects
  && beq a.LG.cost b.LG.cost
  && beq_breakdown a.LG.breakdown b.LG.breakdown

let attribution_is_neutral =
  qtest ~count:8 "attribution and job count never change the result" seed_arb
    (fun seed ->
      let base, n_observed, n_blocks = run_one seed ~jobs:1 ~observe:true in
      (* single-block instances skip the annealer entirely, so the
         term observer legitimately never fires there *)
      (n_blocks < 2 || n_observed > 0)
      && List.for_all
           (fun (jobs, observe) ->
             let r, _, _ = run_one seed ~jobs ~observe in
             same_result base r)
           [ (1, false); (2, true); (2, false); (4, true) ])

(* ---- progress stream v2 -------------------------------------------- *)

let test_stream_v2 () =
  Alcotest.(check int) "hidap-progress schema version" 2 Obs.Stream.version;
  let path = Filename.temp_file "hidap_attrib" ".ndjson" in
  let oc = open_out path in
  (* heartbeat_s 0: the heartbeat domain would race its first event
     against [sa_progress] below, leaving two documents in the file. *)
  Obs.Stream.enable ~heartbeat_s:0.0 ~close_on_disable:true oc;
  Obs.Stream.sa_progress ~instance:1 ~instances:1 ~temperature:0.5 ~best_cost:10.0
    ~cost_terms:[ ("wirelength", 9.0); ("residual", 1.0) ]
    ~moves:100 ~moves_per_s:50.0 ();
  Obs.Stream.disable ();
  (match Obs.Jsonx.parse_file path with
  | Error msg -> Alcotest.failf "progress event did not parse: %s" msg
  | Ok j ->
    Alcotest.(check bool) "event version 2" true
      (Option.bind (Obs.Jsonx.member "version" j) Obs.Jsonx.to_int_opt = Some 2);
    let terms = Obs.Jsonx.member "cost_terms" j in
    Alcotest.(check bool) "cost_terms object present" true
      (match terms with Some (Obs.Jsonx.Obj _) -> true | _ -> false);
    Alcotest.(check bool) "term value round-trips" true
      (Option.bind
         (Option.bind terms (Obs.Jsonx.member "wirelength"))
         Obs.Jsonx.to_float_opt
      = Some 9.0));
  Sys.remove path

let suite =
  [ ( "attribution",
      [ breakdown_sums_exactly; pair_fold_exact; attributed_eval_identical;
        attribution_is_neutral;
        Alcotest.test_case "progress stream v2 carries cost terms" `Quick
          test_stream_v2 ] ) ]
