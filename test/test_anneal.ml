(* Tests for the simulated annealing engine. *)

module Sa = Anneal.Sa

let qtest ?(count = 30) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* 1-D quadratic with gaussian moves: SA must get near the minimum. *)
let quadratic_setup () =
  let cost x = (x -. 3.0) *. (x -. 3.0) in
  let neighbor rng x = x +. Util.Rng.gaussian rng ~mean:0.0 ~stddev:0.5 in
  (cost, neighbor)

let test_minimizes_quadratic () =
  let cost, neighbor = quadratic_setup () in
  let rng = Util.Rng.create 4 in
  let r = Sa.minimize ~rng ~init:20.0 ~cost ~neighbor () in
  Alcotest.(check bool) "near minimum" true (abs_float (r.Sa.best -. 3.0) < 0.5);
  Alcotest.(check bool) "cost improved" true (r.Sa.best_cost < cost 20.0)

let test_deterministic () =
  let cost, neighbor = quadratic_setup () in
  let run () = Sa.minimize ~rng:(Util.Rng.create 9) ~init:10.0 ~cost ~neighbor () in
  let a = run () and b = run () in
  Alcotest.(check (float 0.0)) "identical best" a.Sa.best b.Sa.best;
  Alcotest.(check int) "identical move count" a.Sa.moves b.Sa.moves

let test_respects_max_moves () =
  let cost, neighbor = quadratic_setup () in
  let params = { Sa.default_params with Sa.max_moves = 100 } in
  let r = Sa.minimize ~rng:(Util.Rng.create 1) ~init:10.0 ~cost ~neighbor ~params () in
  Alcotest.(check bool) "bounded moves" true (r.Sa.moves <= 100)

let test_explicit_temperature () =
  let cost, neighbor = quadratic_setup () in
  let params = { Sa.default_params with Sa.initial_temp = Some 10.0; max_moves = 2000 } in
  let r = Sa.minimize ~rng:(Util.Rng.create 2) ~init:10.0 ~cost ~neighbor ~params () in
  Alcotest.(check bool) "still converges" true (abs_float (r.Sa.best -. 3.0) < 1.0)

(* Calibration burns [calibration_samples] cost evaluations before the
   annealing proper; they are reported separately from [moves] so a
   cost-call budget can rely on moves + calibration_moves + 1. *)
let test_calibration_moves_reported () =
  let cost, neighbor = quadratic_setup () in
  let r = Sa.minimize ~rng:(Util.Rng.create 3) ~init:10.0 ~cost ~neighbor () in
  Alcotest.(check int) "calibrated run reports the samples" Sa.calibration_samples
    r.Sa.calibration_moves

let test_calibration_moves_zero_with_explicit_temp () =
  let cost, neighbor = quadratic_setup () in
  let params = { Sa.default_params with Sa.initial_temp = Some 10.0 } in
  let r = Sa.minimize ~rng:(Util.Rng.create 3) ~init:10.0 ~cost ~neighbor ~params () in
  Alcotest.(check int) "explicit temp skips calibration" 0 r.Sa.calibration_moves

(* [moves] must not silently absorb the calibration evaluations: a
   max_moves budget caps moves alone, and the total cost-call count is
   exactly moves + calibration_moves (+1 for the initial state). *)
let test_cost_calls_accounted () =
  let cost, neighbor = quadratic_setup () in
  let calls = ref 0 in
  let cost x = incr calls; cost x in
  let params = { Sa.default_params with Sa.max_moves = 100 } in
  let r = Sa.minimize ~rng:(Util.Rng.create 1) ~init:10.0 ~cost ~neighbor ~params () in
  Alcotest.(check bool) "moves excludes calibration" true (r.Sa.moves <= 100);
  Alcotest.(check int) "cost calls = moves + calibration + init"
    (r.Sa.moves + r.Sa.calibration_moves + 1)
    !calls

let test_stats_consistent () =
  let cost, neighbor = quadratic_setup () in
  let r = Sa.minimize ~rng:(Util.Rng.create 5) ~init:0.0 ~cost ~neighbor () in
  Alcotest.(check bool) "accepted <= moves" true (r.Sa.accepted <= r.Sa.moves);
  Alcotest.(check bool) "ran some plateaus" true (r.Sa.plateaus > 0)

let best_never_worse_than_init =
  qtest "best cost never exceeds the initial cost"
    QCheck.(pair small_int (float_range (-50.0) 50.0))
    (fun (seed, init) ->
      let cost, neighbor = quadratic_setup () in
      let params = Sa.quick_params in
      let r = Sa.minimize ~rng:(Util.Rng.create seed) ~init ~cost ~neighbor ~params () in
      r.Sa.best_cost <= cost init +. 1e-9)

let discrete_state_space =
  qtest "works on discrete states (int moves)"
    QCheck.small_int
    (fun seed ->
      let cost x = float_of_int (abs (x - 7)) in
      let neighbor rng x = x + Util.Rng.range rng (-2) 2 in
      let r =
        Sa.minimize ~rng:(Util.Rng.create seed) ~init:100 ~cost ~neighbor
          ~params:Sa.quick_params ()
      in
      r.Sa.best_cost <= cost 100)

(* Calibration divides by log(initial_acceptance): a target outside
   (0, 1) would silently quench (log 1 = 0) or produce NaN/negative
   temperatures, so it must be rejected up front — but only when
   calibration actually runs (an explicit initial_temp never reads the
   target). *)
let test_acceptance_validation () =
  let cost, neighbor = quadratic_setup () in
  let run params =
    Sa.minimize ~rng:(Util.Rng.create 1) ~init:10.0 ~cost ~neighbor ~params ()
  in
  let rejected a =
    match
      run { Sa.default_params with Sa.initial_acceptance = a; max_moves = 50 }
    with
    | exception Guard.Diag.Fail d -> d.Guard.Diag.code = "bad-sa-acceptance"
    | _ -> false
  in
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "initial_acceptance %g rejected" a)
        true (rejected a))
    [ 0.0; 1.0; -0.3; 1.5; Float.nan ];
  (* valid target and explicit-temperature paths stay untouched *)
  let ok =
    run
      { Sa.default_params with Sa.initial_acceptance = 0.5; max_moves = 50 }
  in
  Alcotest.(check bool) "valid target runs" true (ok.Sa.moves > 0);
  let explicit =
    run
      { Sa.default_params with
        Sa.initial_temp = Some 5.0;
        initial_acceptance = 1.5;
        max_moves = 50 }
  in
  Alcotest.(check bool) "explicit temp skips the validation" true
    (explicit.Sa.moves > 0)

let suite =
  [ ( "anneal.sa",
      [ Alcotest.test_case "minimizes quadratic" `Quick test_minimizes_quadratic;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "max moves" `Quick test_respects_max_moves;
        Alcotest.test_case "explicit temperature" `Quick test_explicit_temperature;
        Alcotest.test_case "calibration moves reported" `Quick
          test_calibration_moves_reported;
        Alcotest.test_case "calibration moves zero with explicit temp" `Quick
          test_calibration_moves_zero_with_explicit_temp;
        Alcotest.test_case "cost calls accounted" `Quick test_cost_calls_accounted;
        Alcotest.test_case "stats consistent" `Quick test_stats_consistent;
        Alcotest.test_case "acceptance target validated" `Quick
          test_acceptance_validation;
        best_never_worse_than_init; discrete_state_space ] ) ]
