(* Checkpoint subsystem: CRC, envelope atomicity/rejection, state
   codec, store retention and rollback, and the resume contract — a
   resumed run is bit-identical to an uninterrupted one. *)

module Flat = Netlist.Flat
module Rect = Geom.Rect
module Crc32 = Ckpt.Crc32
module Envelope = Ckpt.Envelope
module State = Ckpt.State
module Store = Ckpt.Store
module Session = Ckpt.Session

let fresh_dir () =
  let dir = Filename.temp_file "hidap-ckpt" "" in
  Sys.remove dir;
  dir

let fresh_file () = Filename.temp_file "hidap-env" ".ckpt"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ---- crc32 -------------------------------------------------------- *)

let test_crc32_known_answer () =
  (* IEEE 802.3 check value for the standard test vector. *)
  Alcotest.(check int32) "123456789" 0xCBF43926l (Crc32.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.string "")

let test_crc32_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let whole = Crc32.string s in
  let split =
    Crc32.update (Crc32.update 0l s ~pos:0 ~len:9) s ~pos:9
      ~len:(String.length s - 9)
  in
  Alcotest.(check int32) "incremental = one-shot" whole split

let test_crc32_hex () =
  let c = Crc32.string "abc" in
  Alcotest.(check bool) "hex round-trip" true (Crc32.of_hex (Crc32.to_hex c) = Some c);
  Alcotest.(check bool) "bad hex rejected" true (Crc32.of_hex "xyzw1234" = None);
  Alcotest.(check bool) "short hex rejected" true (Crc32.of_hex "12" = None)

(* ---- envelope ----------------------------------------------------- *)

let test_envelope_roundtrip () =
  let path = fresh_file () in
  let payload = "line1\nline2 with \"quotes\"\n\x00\x7f binary-ish\n" in
  Envelope.write path payload;
  (match Envelope.read path with
  | Ok p -> Alcotest.(check string) "payload" payload p
  | Error msg -> Alcotest.failf "read failed: %s" msg);
  Sys.remove path

let test_envelope_truncation_rejected () =
  let path = fresh_file () in
  Envelope.write path "a payload that will lose its tail";
  let s = read_file path in
  write_file path (String.sub s 0 (String.length s - 1));
  (match Envelope.read path with
  | Ok _ -> Alcotest.fail "truncated envelope must be rejected"
  | Error msg ->
    Alcotest.(check bool) "mentions truncation" true
      (Astring.String.is_infix ~affix:"truncated" msg));
  Sys.remove path

let test_envelope_bitflip_rejected () =
  let path = fresh_file () in
  Envelope.write path "a payload whose bytes will be flipped";
  let s = read_file path in
  let b = Bytes.of_string s in
  (* flip a bit in the middle of the payload, far from the header *)
  let i = Bytes.length b - 5 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
  write_file path (Bytes.to_string b);
  (match Envelope.read path with
  | Ok _ -> Alcotest.fail "bit-flipped envelope must be rejected"
  | Error msg ->
    Alcotest.(check bool) "mentions crc" true
      (Astring.String.is_infix ~affix:"crc" msg));
  Sys.remove path

let test_envelope_garbage_rejected () =
  let path = fresh_file () in
  write_file path "not an envelope at all\n";
  (match Envelope.read path with
  | Ok _ -> Alcotest.fail "garbage must be rejected"
  | Error _ -> ());
  Sys.remove path

(* ---- state codec --------------------------------------------------- *)

let sample_fp =
  { State.circuit = "fig1"; seed = 11; lambda = 0.5; sa_starts = 4; cells = 128;
    macro_count = 3 }

let sample_state () =
  { State.fp = sample_fp;
    instances =
      [ { State.nh = 0; depth = 0; n_blocks = 3;
          rects =
            [| Rect.make ~x:0.0 ~y:0.0 ~w:10.0 ~h:5.0;
               Rect.make ~x:10.125 ~y:0.0 ~w:4.75 ~h:5.0 |];
          sa_moves = 123; rng_after = 0x9E3779B97F4A7C15L };
        { State.nh = 7; depth = 1; n_blocks = 2;
          rects = [| Rect.make ~x:1e-9 ~y:3.0 ~w:0.1 ~h:0.2 |];
          sa_moves = 45; rng_after = -1L } ];
    flip =
      Some
        { State.orientations = [ (2, Geom.Orientation.R90); (5, Geom.Orientation.MY) ];
          flip_gain = 0.875 };
    stages = [ "floorplan"; "flipping" ] }

let test_state_roundtrip () =
  let st = sample_state () in
  match State.of_payload (State.to_payload st) with
  | Ok st' -> Alcotest.(check bool) "equal" true (State.equal st st')
  | Error msg -> Alcotest.failf "decode failed: %s" msg

(* Floats are stored as IEEE-754 bit images, so even NaN and the
   infinities survive exactly — a degraded-but-checkpointed run must
   not lose information in the snapshot. *)
let test_state_roundtrip_nonfinite () =
  let st = sample_state () in
  let st =
    { st with
      State.fp = { st.State.fp with State.lambda = Float.neg_infinity };
      instances =
        [ { State.nh = 1; depth = 0; n_blocks = 1;
            rects = [| Rect.make ~x:Float.nan ~y:Float.infinity ~w:1.0 ~h:(-0.0) |];
            sa_moves = 0; rng_after = 0L } ];
      flip = Some { State.orientations = []; flip_gain = Float.nan } }
  in
  match State.of_payload (State.to_payload st) with
  | Ok st' -> Alcotest.(check bool) "bit-exact non-finite" true (State.equal st st')
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_state_rejects_foreign () =
  (match State.of_payload "{\"schema\":\"something-else\",\"version\":1}" with
  | Ok _ -> Alcotest.fail "foreign schema accepted"
  | Error _ -> ());
  match State.of_payload "not even json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

(* ---- store --------------------------------------------------------- *)

let test_store_retention () =
  let dir = fresh_dir () in
  match Store.open_ ~keep:2 ~fresh:true dir with
  | Error msg -> Alcotest.failf "open failed: %s" msg
  | Ok store ->
    let st = sample_state () in
    (* 1 stage snapshot early, then a run of periodic ones *)
    ignore (Store.save store ~stage:true st);
    for _ = 1 to 5 do
      ignore (Store.save store ~stage:false st)
    done;
    let entries = Store.entries store in
    Alcotest.(check int) "stage + last keep survive" 3 (List.length entries);
    Alcotest.(check bool) "stage snapshot retained" true
      (List.exists (fun (e : Store.entry) -> e.Store.stage) entries);
    (* the dropped files are really gone from disk *)
    let on_disk =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ckpt")
    in
    Alcotest.(check int) "disk matches manifest" (List.length entries)
      (List.length on_disk);
    (* a fresh process adopts the manifest and sees the same entries *)
    (match Store.open_ ~keep:2 ~fresh:false dir with
    | Error msg -> Alcotest.failf "reopen failed: %s" msg
    | Ok store' ->
      Alcotest.(check int) "reopen sees entries" (List.length entries)
        (List.length (Store.entries store')))

let test_store_rollback_past_corruption () =
  let dir = fresh_dir () in
  match Store.open_ ~fresh:true dir with
  | Error msg -> Alcotest.failf "open failed: %s" msg
  | Ok store ->
    let st1 = sample_state () in
    let st2 = { st1 with State.stages = [ "floorplan" ] } in
    ignore (Store.save store ~stage:true st1);
    let e2 = Store.save store ~stage:true st2 in
    Store.corrupt_latest store;
    let (), degradations =
      Guard.Supervisor.with_run (fun () ->
          match Store.load_latest store with
          | None -> Alcotest.fail "rollback target lost"
          | Some l ->
            Alcotest.(check bool) "rolled back past the torn snapshot" true
              (l.Store.entry.Store.seq < e2.Store.seq);
            Alcotest.(check int) "one rejection" 1 (List.length l.Store.rejected);
            Alcotest.(check bool) "rolled-back state decodes" true
              (State.equal l.Store.state st1))
    in
    Alcotest.(check bool) "rollback in the ledger" true
      (List.exists
         (fun (e : Guard.Supervisor.entry) ->
           e.Guard.Supervisor.stage = "ckpt.load"
           && e.Guard.Supervisor.reason = "rollback")
         degradations)

let test_store_all_corrupt_is_empty () =
  let dir = fresh_dir () in
  match Store.open_ ~fresh:true dir with
  | Error msg -> Alcotest.failf "open failed: %s" msg
  | Ok store ->
    ignore (Store.save store ~stage:false (sample_state ()));
    Store.corrupt_latest store;
    (match Store.load_latest store with
    | None -> ()
    | Some _ -> Alcotest.fail "single corrupted snapshot must load as None")

(* ---- flow property: save/load identity at stage boundaries --------- *)

let flat_of_circuit = function
  | "fig1" -> Flat.elaborate (Circuitgen.Suite.fig1_design ())
  | name ->
    (match Circuitgen.Suite.find name with
    | Some c -> Flat.elaborate (Circuitgen.Gen.generate c.Circuitgen.Suite.params)
    | None -> Alcotest.failf "unknown circuit %s" name)

let fingerprint ~name flat =
  { State.circuit = name;
    seed = Hidap.Config.default.Hidap.Config.seed;
    lambda = Hidap.Config.default.Hidap.Config.lambda;
    sa_starts = Hidap.Config.default.Hidap.Config.sa_starts;
    cells = Flat.cell_count flat;
    macro_count = Flat.macro_count flat }

let session_or_fail ?every ~dir ~resume fp =
  match Session.start ?every ~dir ~resume fp with
  | Ok s -> s
  | Error d -> Alcotest.failf "session start failed: %a" Guard.Diag.pp d

(* Every snapshot a checkpointed run leaves behind — periodic and
   stage-boundary — must decode to a state whose re-serialization is
   identical (save/load identity), and the final snapshot must carry
   both stage boundaries. *)
let save_load_identity name =
  let flat = flat_of_circuit name in
  let dir = fresh_dir () in
  let session = session_or_fail ~dir ~resume:false (fingerprint ~name flat) in
  let _r = Hidap.place ~ckpt:session flat in
  match Store.open_ ~fresh:false dir with
  | Error msg -> Alcotest.failf "reopen failed: %s" msg
  | Ok store ->
    let entries = Store.entries store in
    Alcotest.(check bool) (name ^ " left snapshots") true (entries <> []);
    List.iter
      (fun (e : Store.entry) ->
        match Store.read_entry store e with
        | Error msg -> Alcotest.failf "%s: %s" e.Store.file msg
        | Ok st ->
          (match State.of_payload (State.to_payload st) with
          | Ok st' ->
            Alcotest.(check bool) (e.Store.file ^ " identity") true
              (State.equal st st')
          | Error msg -> Alcotest.failf "%s re-decode: %s" e.Store.file msg))
      entries;
    let last = List.nth entries (List.length entries - 1) in
    (match Store.read_entry store last with
    | Error msg -> Alcotest.failf "last snapshot: %s" msg
    | Ok st ->
      Alcotest.(check bool) "final snapshot has both stages" true
        (List.mem "floorplan" st.State.stages && List.mem "flipping" st.State.stages);
      Alcotest.(check bool) "final snapshot has the flip result" true
        (st.State.flip <> None))

let test_save_load_identity_fig1 () = save_load_identity "fig1"

let test_save_load_identity_c1 () = save_load_identity "c1"

(* ---- resume determinism ------------------------------------------- *)

let bits = Int64.bits_of_float

let placements_bit_equal (a : Hidap.result) (b : Hidap.result) =
  List.length a.Hidap.placements = List.length b.Hidap.placements
  && List.for_all2
       (fun (p : Hidap.macro_placement) (q : Hidap.macro_placement) ->
         p.Hidap.fid = q.Hidap.fid && p.Hidap.orient = q.Hidap.orient
         && bits p.Hidap.rect.Rect.x = bits q.Hidap.rect.Rect.x
         && bits p.Hidap.rect.Rect.y = bits q.Hidap.rect.Rect.y
         && bits p.Hidap.rect.Rect.w = bits q.Hidap.rect.Rect.w
         && bits p.Hidap.rect.Rect.h = bits q.Hidap.rect.Rect.h)
       a.Hidap.placements b.Hidap.placements

(* Resume from the complete store: everything replays, nothing is
   recomputed, and the result is bit-identical to an un-checkpointed
   run. Then truncate the store back to an early snapshot and resume
   again: the tail is recomputed, same guarantee. *)
let resume_determinism name =
  let flat = flat_of_circuit name in
  let baseline = Hidap.place flat in
  let dir = fresh_dir () in
  let fp = fingerprint ~name flat in
  let s0 = session_or_fail ~dir ~resume:false fp in
  let checkpointed = Hidap.place ~ckpt:s0 flat in
  Alcotest.(check bool) "checkpointed = plain" true
    (placements_bit_equal baseline checkpointed);
  (* full resume *)
  let s1 = session_or_fail ~dir ~resume:true fp in
  Alcotest.(check bool) "resumed from a snapshot" true
    (Session.resumed_from s1 <> None);
  let resumed = Hidap.place ~ckpt:s1 flat in
  Alcotest.(check bool) "full resume bit-identical" true
    (placements_bit_equal baseline resumed);
  let sm = Session.summary s1 in
  Alcotest.(check bool) "work was replayed, not redone" true
    (sm.Session.instances_reused > 0);
  (* truncated-prefix resume: drop the manifest and every snapshot past
     the first, as a crash between the first snapshot and the next
     would. The rescan adopts the survivor; the rest is recomputed. *)
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ckpt")
    |> List.sort compare
  in
  (match files with
  | [] -> Alcotest.fail "no snapshots to truncate"
  | first :: rest ->
    List.iter (fun f -> Sys.remove (Filename.concat dir f)) rest;
    if Sys.file_exists (Filename.concat dir "manifest.json") then
      Sys.remove (Filename.concat dir "manifest.json");
    let s2 = session_or_fail ~dir ~resume:true fp in
    Alcotest.(check bool) "resumed from the survivor" true
      (Session.resumed_from s2 = Some first);
    let resumed' = Hidap.place ~ckpt:s2 flat in
    Alcotest.(check bool) "truncated-prefix resume bit-identical" true
      (placements_bit_equal baseline resumed'))

let test_resume_determinism_fig1 () = resume_determinism "fig1"

let test_resume_determinism_c1 () = resume_determinism "c1"

(* Resuming under a different fingerprint must refuse, not silently
   blend two runs. *)
let test_resume_fingerprint_mismatch () =
  let flat = flat_of_circuit "fig1" in
  let dir = fresh_dir () in
  let fp = fingerprint ~name:"fig1" flat in
  let s0 = session_or_fail ~dir ~resume:false fp in
  ignore (Hidap.place ~ckpt:s0 flat);
  match Session.start ~dir ~resume:true { fp with State.seed = fp.State.seed + 1 } with
  | Ok _ -> Alcotest.fail "fingerprint mismatch accepted"
  | Error d ->
    Alcotest.(check string) "diagnostic code" "ckpt-mismatch" d.Guard.Diag.code

(* An empty (or missing) store with --resume starts from scratch, so
   retry loops are idempotent. *)
let test_resume_empty_store_is_fresh () =
  let dir = fresh_dir () in
  let fp = sample_fp in
  let s = session_or_fail ~dir ~resume:true fp in
  Alcotest.(check bool) "fresh" true (Session.resumed_from s = None)

(* ---- fault sites ---------------------------------------------------- *)

(* [ckpt_write] costs the snapshots, never the placement. *)
let test_ckpt_write_fault_degrades () =
  let flat = flat_of_circuit "fig1" in
  let baseline = Hidap.place flat in
  let dir = fresh_dir () in
  let spec = { Guard.Fault.site = "ckpt_write"; nth = 1; action = Guard.Fault.Raise } in
  let r, degradations =
    Guard.Supervisor.with_run ~faults:[ spec ] (fun () ->
        let s =
          session_or_fail ~dir ~resume:false (fingerprint ~name:"fig1" flat)
        in
        let r = Hidap.place ~ckpt:s flat in
        (r, Session.summary s))
  in
  let r, sm = r in
  Alcotest.(check bool) "degradation recorded" true
    (List.exists
       (fun (e : Guard.Supervisor.entry) -> e.Guard.Supervisor.stage = "ckpt_write")
       degradations);
  Alcotest.(check int) "first snapshot lost" 0 sm.Session.snapshots_written;
  Alcotest.(check int) "same macro count" (List.length baseline.Hidap.placements)
    (List.length r.Hidap.placements)

(* [ckpt_load_corrupt] tears the newest snapshot during resume; the
   session rolls back to the previous valid one and the run still
   completes with a legal placement. (The recorded degradation routes
   the run through the post-place repair pass, so a fault-injected run
   is not bit-compared against the clean baseline — kill-based resume,
   which records nothing, is; see the crash harness.) *)
let test_ckpt_load_corrupt_rolls_back () =
  let flat = flat_of_circuit "fig1" in
  let baseline = Hidap.place flat in
  let dir = fresh_dir () in
  let fp = fingerprint ~name:"fig1" flat in
  let s0 = session_or_fail ~dir ~resume:false fp in
  ignore (Hidap.place ~ckpt:s0 flat);
  let spec =
    { Guard.Fault.site = "ckpt_load_corrupt"; nth = 1; action = Guard.Fault.Raise }
  in
  let r, degradations =
    Guard.Supervisor.with_run ~faults:[ spec ] (fun () ->
        let s = session_or_fail ~dir ~resume:true fp in
        (Hidap.place ~ckpt:s flat, Session.resumed_from s))
  in
  let r, resumed_from = r in
  Alcotest.(check bool) "fault recorded" true
    (List.exists
       (fun (e : Guard.Supervisor.entry) ->
         e.Guard.Supervisor.stage = "ckpt_load_corrupt")
       degradations);
  Alcotest.(check bool) "rollback recorded" true
    (List.exists
       (fun (e : Guard.Supervisor.entry) ->
         e.Guard.Supervisor.stage = "ckpt.load"
         && e.Guard.Supervisor.reason = "rollback")
       degradations);
  Alcotest.(check bool) "resumed from an earlier snapshot" true
    (resumed_from <> None);
  Alcotest.(check int) "every macro still placed"
    (List.length baseline.Hidap.placements)
    (List.length r.Hidap.placements);
  let placements =
    List.map
      (fun (p : Hidap.macro_placement) -> (p.Hidap.fid, p.Hidap.rect, p.Hidap.orient))
      r.Hidap.placements
  in
  Alcotest.(check bool) "degraded placement passes the audit" true
    (Guard.Audit.ok (Guard.Audit.run ~flat ~die:r.Hidap.die ~placements))

(* ---- gc ------------------------------------------------------------ *)

let test_gc_sweeps_unreferenced () =
  let dir = fresh_dir () in
  (match Store.open_ ~fresh:true dir with
  | Error msg -> Alcotest.failf "open failed: %s" msg
  | Ok store ->
    for _ = 1 to 3 do
      ignore (Store.save store ~stage:false (sample_state ()))
    done);
  (* a second fresh sequence ignores — but does not delete — the first *)
  (match Store.open_ ~fresh:true dir with
  | Error msg -> Alcotest.failf "reopen failed: %s" msg
  | Ok store ->
    ignore (Store.save store ~stage:true (sample_state ()));
    let before =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ckpt")
    in
    Alcotest.(check bool) "old sequence still on disk" true (List.length before > 1);
    let removed = Store.gc store in
    Alcotest.(check bool) "gc removed the orphans" true (removed <> []);
    let after =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ckpt")
    in
    Alcotest.(check int) "only the live sequence remains" 1 (List.length after))

let suite =
  [ ( "ckpt",
      [ Alcotest.test_case "crc32 known answer" `Quick test_crc32_known_answer;
        Alcotest.test_case "crc32 incremental" `Quick test_crc32_incremental;
        Alcotest.test_case "crc32 hex" `Quick test_crc32_hex;
        Alcotest.test_case "envelope round-trip" `Quick test_envelope_roundtrip;
        Alcotest.test_case "envelope rejects truncation" `Quick
          test_envelope_truncation_rejected;
        Alcotest.test_case "envelope rejects bit flips" `Quick
          test_envelope_bitflip_rejected;
        Alcotest.test_case "envelope rejects garbage" `Quick
          test_envelope_garbage_rejected;
        Alcotest.test_case "state round-trip" `Quick test_state_roundtrip;
        Alcotest.test_case "state round-trip non-finite" `Quick
          test_state_roundtrip_nonfinite;
        Alcotest.test_case "state rejects foreign payloads" `Quick
          test_state_rejects_foreign;
        Alcotest.test_case "store retention" `Quick test_store_retention;
        Alcotest.test_case "store rolls back past corruption" `Quick
          test_store_rollback_past_corruption;
        Alcotest.test_case "store of one corrupt snapshot is empty" `Quick
          test_store_all_corrupt_is_empty;
        Alcotest.test_case "gc sweeps unreferenced snapshots" `Quick
          test_gc_sweeps_unreferenced;
        Alcotest.test_case "save/load identity (fig1)" `Quick
          test_save_load_identity_fig1;
        Alcotest.test_case "save/load identity (c1)" `Slow
          test_save_load_identity_c1;
        Alcotest.test_case "resume determinism (fig1)" `Quick
          test_resume_determinism_fig1;
        Alcotest.test_case "resume determinism (c1)" `Slow
          test_resume_determinism_c1;
        Alcotest.test_case "resume refuses fingerprint mismatch" `Quick
          test_resume_fingerprint_mismatch;
        Alcotest.test_case "resume on empty store is fresh" `Quick
          test_resume_empty_store_is_fresh;
        Alcotest.test_case "ckpt_write fault degrades" `Quick
          test_ckpt_write_fault_degrades;
        Alcotest.test_case "ckpt_load_corrupt rolls back" `Quick
          test_ckpt_load_corrupt_rolls_back ] ) ]
