(* Tests for the QoR run ledger: Jsonx parsing and string escaping,
   percentile edge cases, record round-trips through JSON, the baseline
   comparator's verdicts, and the self-contained HTML report. *)

module Jsonx = Obs.Jsonx
module Metrics = Obs.Metrics
module Record = Qor.Record
module Baseline = Qor.Baseline

(* ---------------------------------------------------------------- *)
(* Jsonx: escaping and parsing                                       *)
(* ---------------------------------------------------------------- *)

let parse_ok s =
  match Jsonx.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let roundtrip v = parse_ok (Jsonx.to_string ~compact:true v)

let test_escape_roundtrip () =
  (* Control characters, quotes, backslashes and raw UTF-8 bytes must
     survive serialize -> parse unchanged. *)
  let strings =
    [ "plain";
      "quote\" backslash\\ slash/";
      "tab\t newline\n return\r";
      "bell\007 nul\000 esc\027";
      "caf\xc3\xa9 \xe6\xbc\xa2\xe5\xad\x97";
      (* U+1F600 as UTF-8 bytes *)
      "\xf0\x9f\x98\x80" ]
  in
  List.iter
    (fun s ->
      match roundtrip (Jsonx.String s) with
      | Jsonx.String s' -> Alcotest.(check string) "string survives" s s'
      | _ -> Alcotest.fail "expected a string back")
    strings

let test_unicode_escapes () =
  (* \uXXXX escapes decode to UTF-8 bytes, including surrogate pairs. *)
  let check src expect =
    match parse_ok src with
    | Jsonx.String s -> Alcotest.(check string) src expect s
    | _ -> Alcotest.fail "expected a string"
  in
  check {|"A"|} "A";
  check {|"é"|} "\xc3\xa9";
  check {|"漢字"|} "\xe6\xbc\xa2\xe5\xad\x97";
  (* surrogate pair for U+1F600 *)
  check {|"😀"|} "\xf0\x9f\x98\x80";
  (* lone high surrogate is an error, not silent garbage *)
  (match Jsonx.parse {|"\ud83d"|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lone surrogate must be rejected")

let test_parse_values () =
  Alcotest.(check bool) "int" true (parse_ok "42" = Jsonx.Int 42);
  Alcotest.(check bool) "negative" true (parse_ok "-7" = Jsonx.Int (-7));
  (match parse_ok "0.25" with
  | Jsonx.Float f -> Alcotest.(check (float 1e-12)) "float" 0.25 f
  | _ -> Alcotest.fail "expected float");
  (match parse_ok "1e3" with
  | Jsonx.Float f -> Alcotest.(check (float 1e-9)) "exponent" 1000.0 f
  | _ -> Alcotest.fail "expected float");
  Alcotest.(check bool) "null" true (parse_ok "null" = Jsonx.Null);
  Alcotest.(check bool) "true" true (parse_ok "true" = Jsonx.Bool true);
  Alcotest.(check bool) "nested" true
    (parse_ok {| {"a":[1,2,{"b":null}],"c":"d"} |}
    = Jsonx.Obj
        [ ("a", Jsonx.List [ Jsonx.Int 1; Jsonx.Int 2; Jsonx.Obj [ ("b", Jsonx.Null) ] ]);
          ("c", Jsonx.String "d") ])

let test_parse_errors () =
  let rejects s =
    match Jsonx.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parse %S should fail" s
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects {|{"a":}|};
  rejects "1 2";
  rejects {|"unterminated|};
  rejects {|"\q"|}

(* ---------------------------------------------------------------- *)
(* Percentile edge cases                                             *)
(* ---------------------------------------------------------------- *)

let test_percentile_edges () =
  (* Convention: an empty sample has no percentiles; a single sample is
     every percentile. *)
  Alcotest.(check bool) "empty -> None" true (Metrics.percentile_opt [] ~p:50.0 = None);
  (match Metrics.percentile [] ~p:50.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "percentile [] must raise");
  Alcotest.(check bool) "singleton p0" true
    (Metrics.percentile_opt [ 3.0 ] ~p:0.0 = Some 3.0);
  Alcotest.(check bool) "singleton p100" true
    (Metrics.percentile_opt [ 3.0 ] ~p:100.0 = Some 3.0);
  let r = Metrics.create () in
  Alcotest.(check bool) "absent hist -> None" true
    (Metrics.hist_percentile r "nope" ~p:50.0 = None);
  Metrics.observe r "h" 1.0;
  Alcotest.(check bool) "one-sample hist" true
    (match Metrics.hist_percentile r "h" ~p:99.0 with
    | Some v -> abs_float (v -. 1.0) < 1e-9
    | None -> false)

(* ---------------------------------------------------------------- *)
(* QoR record round-trip                                             *)
(* ---------------------------------------------------------------- *)

let sample_record () =
  let rect x y w h = Geom.Rect.make ~x ~y ~w ~h in
  {
    Record.rec_version = Record.version;
    circuit = "c1";
    flow = "HiDaP";
    seed = 42;
    lambda = Some 0.5;
    cells = 1200;
    macro_count = 2;
    qm =
      {
        Record.wl_um = 123456.75;
        grc_pct = 1.5;
        wns_pct = -3.25;
        tns = -120.0;
        runtime_s = 4.25;
        dataflow_cost = 987.5;
      };
    displacement = [ ("IndEDA", 250.0); ("handFP", 80.5) ];
    sa_moves = 21312;
    sa_curve = [ (100.0, 0.9); (200.0, 0.7); (300.0, 0.4) ];
    stages =
      [ { Record.stage_name = "hidap.place"; total_us = 1.2e6; calls = 1 };
        { Record.stage_name = "floorplan.level"; total_us = 8.0e5; calls = 7 } ];
    gc =
      Some
        {
          Obs.Gcstats.minor_words = 1.0e7;
          promoted_words = 1.0e5;
          major_words = 2.0e5;
          minor_collections = 12;
          major_collections = 3;
          compactions = 0;
          heap_words = 500_000;
          top_heap_words = 600_000;
        };
    die = rect 0.0 0.0 400.0 400.0;
    macros =
      [ { Record.macro_name = "top/u0/ram"; macro_rect = rect 10.0 20.0 50.0 40.0;
          orient = Geom.Orientation.R0 };
        { Record.macro_name = "top/u1/rom"; macro_rect = rect 200.0 100.0 30.0 60.0;
          orient = Geom.Orientation.MY } ];
    levels =
      [ { Record.depth = 0; ht_id = 0; level_rect = rect 0.0 0.0 400.0 400.0;
          level_macros = 2 };
        { Record.depth = 1; ht_id = 3; level_rect = rect 0.0 0.0 200.0 400.0;
          level_macros = 1 } ];
    degradations =
      [ { Guard.Supervisor.stage = "floorplan.sa"; reason = "fault";
          detail = "injected fault at floorplan.sa"; count = 3 } ];
    ckpt =
      Some
        { Record.resumed_from = Some "snap-000004.ckpt"; snapshots_written = 2;
          instances_reused = 5 };
    perf =
      Some
        { Record.perf_counters = [ ("sa.moves", 21312); ("sa.accepts", 9000) ];
          perf_moves_per_s = 5014.6;
          perf_wall_s = 4.25;
          pool_workers =
            [ { Record.pw_tasks = 3; pw_steals = 0; pw_busy_us = 1.0e6 };
              { Record.pw_tasks = 4; pw_steals = 4; pw_busy_us = 1.1e6 } ];
          pool_wall_us = 2.0e6;
          pool_maps = 2;
          profile = [ ("hidap.place;floorplan.run", 41); ("(idle)", 3) ] };
    cost_breakdown =
      Some
        { Record.cb_total = 1234.5;
          cb_terms =
            [ ("wirelength", 1200.0); ("at_penalty", 30.0); ("am_penalty", 4.0);
              ("macro_penalty", 0.0); ("residual", 0.5) ];
          cb_pairs =
            [ { Record.pair_a = "gdf0"; pair_b = "gdf1"; pair_weight = 2.0;
                pair_wl = 700.0 };
              { Record.pair_a = "gdf1"; pair_b = "port:N"; pair_weight = 1.0;
                pair_wl = 500.0 } ];
          cb_blocks =
            [ { Record.bc_name = "gdf0"; bc_wl = 700.0; bc_at_shift = 10.0;
                bc_am_deficit = 0.0; bc_macro_deficit = 0.0 };
              { Record.bc_name = "gdf1"; bc_wl = 1200.0; bc_at_shift = 5.0;
                bc_am_deficit = 2.0; bc_macro_deficit = 0.0 } ];
          cb_term_curves =
            [ ("wirelength", [ (100.0, 1400.0); (200.0, 1200.0) ]);
              ("am_penalty", [ (100.0, 9.0); (200.0, 4.0) ]) ] };
  }

let test_record_roundtrip () =
  let r = sample_record () in
  let json = roundtrip (Record.to_json r) in
  match Record.of_json json with
  | Error e -> Alcotest.failf "of_json failed: %s" e
  | Ok r' ->
    Alcotest.(check string) "circuit" r.Record.circuit r'.Record.circuit;
    Alcotest.(check string) "flow" r.Record.flow r'.Record.flow;
    Alcotest.(check int) "seed" r.Record.seed r'.Record.seed;
    Alcotest.(check bool) "lambda" true (r'.Record.lambda = Some 0.5);
    Alcotest.(check (float 1e-6)) "wl_um" r.Record.qm.Record.wl_um
      r'.Record.qm.Record.wl_um;
    Alcotest.(check (float 1e-6)) "tns" r.Record.qm.Record.tns r'.Record.qm.Record.tns;
    Alcotest.(check (float 1e-6)) "dataflow" r.Record.qm.Record.dataflow_cost
      r'.Record.qm.Record.dataflow_cost;
    Alcotest.(check int) "sa_moves" r.Record.sa_moves r'.Record.sa_moves;
    Alcotest.(check int) "curve points" (List.length r.Record.sa_curve)
      (List.length r'.Record.sa_curve);
    Alcotest.(check int) "stages" (List.length r.Record.stages)
      (List.length r'.Record.stages);
    Alcotest.(check bool) "gc kept" true (r'.Record.gc <> None);
    Alcotest.(check int) "macros" 2 (List.length r'.Record.macros);
    Alcotest.(check bool) "orient kept" true
      ((List.nth r'.Record.macros 1).Record.orient = Geom.Orientation.MY);
    Alcotest.(check int) "levels" 2 (List.length r'.Record.levels);
    Alcotest.(check int) "ht_id kept" 3 (List.nth r'.Record.levels 1).Record.ht_id;
    Alcotest.(check bool) "displacement kept" true
      (r'.Record.displacement = r.Record.displacement);
    Alcotest.(check bool) "ckpt kept" true (r'.Record.ckpt = r.Record.ckpt);
    Alcotest.(check bool) "perf kept" true (r'.Record.perf = r.Record.perf);
    Alcotest.(check bool) "cost_breakdown kept" true
      (r'.Record.cost_breakdown = r.Record.cost_breakdown)

let test_record_versioning () =
  let r = sample_record () in
  (* Unknown fields are ignored. *)
  let with_extra =
    match Record.to_json r with
    | Jsonx.Obj fields -> Jsonx.Obj (fields @ [ ("future_field", Jsonx.Int 1) ])
    | _ -> Alcotest.fail "record must serialize to an object"
  in
  (match Record.of_json with_extra with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unknown field must be ignored: %s" e);
  (* Newer versions are refused. *)
  let newer =
    match Record.to_json r with
    | Jsonx.Obj fields ->
      Jsonx.Obj
        (List.map
           (fun (k, v) -> if k = "version" then (k, Jsonx.Int 999) else (k, v))
           fields)
    | _ -> assert false
  in
  (match Record.of_json newer with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "newer schema version must be refused");
  (* A v2 record (no cost_breakdown section) reads back with None. *)
  let v2 =
    match Record.to_json r with
    | Jsonx.Obj fields ->
      Jsonx.Obj
        (List.filter_map
           (fun (k, v) ->
             if k = "cost_breakdown" then None
             else if k = "version" then Some (k, Jsonx.Int 2)
             else Some (k, v))
           fields)
    | _ -> assert false
  in
  match Record.of_json v2 with
  | Error e -> Alcotest.failf "v2 record must still parse: %s" e
  | Ok r' ->
    Alcotest.(check bool) "v2 reads back without a breakdown" true
      (r'.Record.cost_breakdown = None)

let test_ledger_roundtrip () =
  let r = sample_record () in
  let doc = roundtrip (Record.ledger_json [ r; { r with Record.flow = "IndEDA" } ]) in
  match Record.records_of_json doc with
  | Error e -> Alcotest.failf "ledger parse failed: %s" e
  | Ok rs ->
    Alcotest.(check int) "two records" 2 (List.length rs);
    Alcotest.(check (list string)) "flows" [ "HiDaP"; "IndEDA" ]
      (List.map (fun (x : Record.t) -> x.Record.flow) rs);
    (* A bare record is accepted too. *)
    (match Record.records_of_json (Record.to_json r) with
    | Ok [ _ ] -> ()
    | _ -> Alcotest.fail "bare record must parse as a one-record ledger")

(* ---------------------------------------------------------------- *)
(* Baseline comparator                                               *)
(* ---------------------------------------------------------------- *)

let test_comparator_verdicts () =
  let r = sample_record () in
  let base = Baseline.of_records [ r ] in
  (* Unmodified record: exactly unchanged. *)
  let c = Baseline.compare_record base r in
  Alcotest.(check bool) "same -> Unchanged" true
    (c.Baseline.run_verdict = Baseline.Unchanged);
  Alcotest.(check bool) "baseline found" false c.Baseline.missing_baseline;
  (* 10% wirelength regression trips the 2% tolerance. *)
  let worse =
    { r with Record.qm = { r.Record.qm with Record.wl_um = r.Record.qm.Record.wl_um *. 1.10 } }
  in
  Alcotest.(check bool) "wl +10%% -> Regressed" true
    ((Baseline.compare_record base worse).Baseline.run_verdict = Baseline.Regressed);
  (* WNS is higher-is-better: moving toward zero is an improvement. *)
  let better =
    { r with Record.qm = { r.Record.qm with Record.wns_pct = -1.0 } }
  in
  Alcotest.(check bool) "wns improves -> Improved" true
    ((Baseline.compare_record base better).Baseline.run_verdict = Baseline.Improved);
  (* ... and degrading it regresses. *)
  let wns_worse =
    { r with Record.qm = { r.Record.qm with Record.wns_pct = -8.0 } }
  in
  Alcotest.(check bool) "wns degrades -> Regressed" true
    ((Baseline.compare_record base wns_worse).Baseline.run_verdict = Baseline.Regressed);
  (* Runtime is never gated. *)
  let slow =
    { r with Record.qm = { r.Record.qm with Record.runtime_s = 1000.0 } }
  in
  Alcotest.(check bool) "runtime not gated" true
    ((Baseline.compare_record base slow).Baseline.run_verdict = Baseline.Unchanged);
  (* Unknown circuit: unchanged but flagged. *)
  let foreign = { r with Record.circuit = "c99" } in
  let cf = Baseline.compare_record base foreign in
  Alcotest.(check bool) "missing baseline flagged" true cf.Baseline.missing_baseline;
  Alcotest.(check bool) "missing baseline -> Unchanged" true
    (cf.Baseline.run_verdict = Baseline.Unchanged);
  (* overall: Regressed dominates. *)
  Alcotest.(check bool) "overall regressed" true
    (Baseline.overall (Baseline.compare_all base [ better; worse ])
    = Baseline.Regressed)

let test_baseline_json_roundtrip () =
  let base = Baseline.of_records [ sample_record () ] in
  match Baseline.of_json (roundtrip (Baseline.to_json base)) with
  | Error e -> Alcotest.failf "baseline parse failed: %s" e
  | Ok b ->
    Alcotest.(check int) "entries" 1 (List.length b.Baseline.entries);
    let e = List.hd b.Baseline.entries in
    Alcotest.(check string) "circuit" "c1" e.Baseline.circuit;
    Alcotest.(check (float 1e-6)) "wl" 123456.75 e.Baseline.qm.Record.wl_um;
    Alcotest.(check bool) "tolerances kept" true
      (List.mem_assoc "wl_um" b.Baseline.tolerances)

(* ---------------------------------------------------------------- *)
(* HTML report                                                       *)
(* ---------------------------------------------------------------- *)

let test_html_report () =
  let r = sample_record () in
  let base = Baseline.of_records [ r ] in
  let worse =
    { r with Record.qm = { r.Record.qm with Record.wl_um = r.Record.qm.Record.wl_um *. 1.10 } }
  in
  let html = Qor.Html.render ~baseline:base ~title:"c1 run" [ worse ] in
  let contains needle =
    Alcotest.(check bool) (Printf.sprintf "report contains %S" needle) true
      (Astring.String.is_infix ~affix:needle html)
  in
  contains "<!DOCTYPE html>";
  contains "<svg";
  contains "c1 run";
  contains "REGRESSED";
  contains "wl_um";
  (* floorplan + sparkline are inlined: nothing is fetched from outside
     (the SVG xmlns namespace URI is an identifier, not a reference) *)
  Alcotest.(check bool) "self-contained" false
    (Astring.String.is_infix ~affix:"src=\"http" html
    || Astring.String.is_infix ~affix:"<link" html
    || Astring.String.is_infix ~affix:"<script src" html);
  (* macro names from the record survive into the floorplan (the
     hierarchy prefix is stripped for display) *)
  contains "ram";
  contains "rom"

let suite =
  [ ( "qor",
      [ Alcotest.test_case "jsonx escape round-trip" `Quick test_escape_roundtrip;
        Alcotest.test_case "jsonx unicode escapes" `Quick test_unicode_escapes;
        Alcotest.test_case "jsonx value parsing" `Quick test_parse_values;
        Alcotest.test_case "jsonx parse errors" `Quick test_parse_errors;
        Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
        Alcotest.test_case "record json round-trip" `Quick test_record_roundtrip;
        Alcotest.test_case "record versioning rules" `Quick test_record_versioning;
        Alcotest.test_case "ledger round-trip" `Quick test_ledger_roundtrip;
        Alcotest.test_case "comparator verdicts" `Quick test_comparator_verdicts;
        Alcotest.test_case "baseline json round-trip" `Quick
          test_baseline_json_roundtrip;
        Alcotest.test_case "html report" `Quick test_html_report ] ) ]
