(* Robustness layer: validator, fault injection, budgets, supervisor,
   audit, and the end-to-end guarantee that every registered fault site
   still yields an audit-clean placement. *)

module D = Netlist.Design
module Flat = Netlist.Flat
module Rect = Geom.Rect

let check_float = Alcotest.(check (float 1e-9))

(* ---- validator ---------------------------------------------------- *)

let base_module ?(cells = []) ?(insts = []) name =
  D.module_def ~name
    ~ports:[ D.port ~name:"i" ~dir:D.Input; D.port ~name:"o" ~dir:D.Output ]
    ~cells ~insts ()

let test_validate_clean () =
  let d = Circuitgen.Suite.fig1_design () in
  match Guard.Validate.design d with
  | Ok r ->
    Alcotest.(check int) "no repairs" 0 r.Guard.Validate.repairs;
    Alcotest.(check bool) "same design" true (r.Guard.Validate.design == d)
  | Error _ -> Alcotest.fail "fig1 design must validate"

let test_validate_dangling_binding () =
  let inner = base_module "inner" in
  let top =
    base_module "top"
      ~insts:[ D.inst ~name:"u0" ~module_:"inner"
                 ~bindings:[ ("i", "n1"); ("nosuch", "n2") ] ]
  in
  let d = D.design ~top:"top" ~modules:[ top; inner ] in
  match Guard.Validate.design d with
  | Error _ -> Alcotest.fail "dangling binding should be repairable"
  | Ok r ->
    Alcotest.(check bool) "repaired" true (r.Guard.Validate.repairs > 0);
    Alcotest.(check bool) "diagnosed" true
      (List.exists (fun (g : Guard.Diag.t) -> g.Guard.Diag.code = "dangling-binding")
         r.Guard.Validate.diags);
    (* the repaired design must now pass structural validation *)
    (match D.validate r.Guard.Validate.design with
    | Ok () -> ()
    | Error e -> Alcotest.failf "repair left design invalid: %a" D.pp_error e)

let test_validate_strict_escalates () =
  let inner = base_module "inner" in
  let top =
    base_module "top"
      ~insts:[ D.inst ~name:"u0" ~module_:"inner" ~bindings:[ ("nosuch", "n") ] ]
  in
  let d = D.design ~top:"top" ~modules:[ top; inner ] in
  (match Guard.Validate.design d with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "non-strict run should repair");
  match Guard.Validate.design ~strict:true d with
  | Ok _ -> Alcotest.fail "strict must reject what repair would fix"
  | Error diags ->
    Alcotest.(check bool) "has errors" true (Guard.Validate.errors diags <> [])

let test_validate_missing_module () =
  let top =
    base_module "top"
      ~insts:[ D.inst ~name:"u0" ~module_:"ghost" ~bindings:[] ]
  in
  let d = D.design ~top:"top" ~modules:[ top ] in
  match Guard.Validate.design d with
  | Ok _ -> Alcotest.fail "missing module is not repairable"
  | Error diags ->
    Alcotest.(check bool) "missing-module error" true
      (List.exists
         (fun (g : Guard.Diag.t) ->
           g.Guard.Diag.code = "missing-module" && Guard.Diag.is_error g)
         diags)

let test_validate_bad_area () =
  let top =
    base_module "top"
      ~cells:[ { D.cname = "c0"; ckind = D.Comb; carea = Float.nan;
                 cins = [ "i" ]; couts = [ "o" ] } ]
  in
  let d = D.design ~top:"top" ~modules:[ top ] in
  match Guard.Validate.design d with
  | Error _ -> Alcotest.fail "bad area should be repaired"
  | Ok r ->
    Alcotest.(check bool) "bad-area diagnosed" true
      (List.exists (fun (g : Guard.Diag.t) -> g.Guard.Diag.code = "bad-area")
         r.Guard.Validate.diags);
    let m = Option.get (D.find_module r.Guard.Validate.design "top") in
    let c = List.hd m.D.cells in
    Alcotest.(check bool) "area now finite" true (Float.is_finite c.D.carea)

let test_validate_flat_macro_exceeds_die () =
  let flat = Flat.elaborate (Circuitgen.Suite.fig1_design ()) in
  let die = Rect.make ~x:0.0 ~y:0.0 ~w:10.0 ~h:10.0 in
  let diags = Guard.Validate.flat ~die flat in
  Alcotest.(check bool) "macro-exceeds-die warned" true
    (List.exists
       (fun (g : Guard.Diag.t) -> g.Guard.Diag.code = "macro-exceeds-die")
       diags);
  let strict = Guard.Validate.flat ~strict:true ~die flat in
  Alcotest.(check bool) "strict escalates" true
    (Guard.Validate.errors strict <> [])

(* ---- fault specs -------------------------------------------------- *)

let test_fault_parse () =
  (match Guard.Fault.parse "floorplan.sa" with
  | Ok [ { Guard.Fault.site = "floorplan.sa"; nth = 1; action = Guard.Fault.Raise } ] -> ()
  | _ -> Alcotest.fail "plain site");
  (match Guard.Fault.parse "flipping.run:3" with
  | Ok [ { Guard.Fault.nth = 3; _ } ] -> ()
  | _ -> Alcotest.fail "nth");
  (match Guard.Fault.parse "cellplace.run:stall=0.25" with
  | Ok [ { Guard.Fault.action = Guard.Fault.Stall 0.25; _ } ] -> ()
  | _ -> Alcotest.fail "stall");
  (match Guard.Fault.parse "nosuch.site" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown site must be rejected");
  (match Guard.Fault.parse "floorplan.sa:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad count must be rejected")

let test_fault_hit_counts () =
  Guard.Fault.arm [ { Guard.Fault.site = "floorplan.sa"; nth = 2; action = Guard.Fault.Raise } ];
  Fun.protect ~finally:Guard.Fault.disarm @@ fun () ->
  Guard.Fault.hit "floorplan.sa";  (* first hit skipped *)
  (match Guard.Fault.hit "floorplan.sa" with
  | () -> Alcotest.fail "second hit must raise"
  | exception Guard.Fault.Injected { site = "floorplan.sa"; hit = 2 } -> ()
  | exception _ -> Alcotest.fail "wrong exception");
  (* other sites are unaffected *)
  Guard.Fault.hit "flipping.run"

let test_budget_parse_and_check () =
  (match Guard.Budget.parse "floorplan=1.5,cellplace=10" with
  | Ok [ ("floorplan", 1.5); ("cellplace", 10.0) ] -> ()
  | _ -> Alcotest.fail "budget parse");
  (match Guard.Budget.parse "floorplan=banana" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad seconds must be rejected");
  Guard.Budget.configure [ ("floorplan", 0.0) ];
  Fun.protect ~finally:Guard.Budget.clear @@ fun () ->
  Guard.Budget.check ~stage:"flipping";  (* unbudgeted stage: no-op *)
  Guard.Budget.check ~stage:"floorplan";  (* first poll starts the clock *)
  Unix.sleepf 0.002;  (* get past the microsecond the deadline was stamped in *)
  match Guard.Budget.check ~stage:"floorplan" with
  | () -> Alcotest.fail "zero budget must trip on the next poll"
  | exception Guard.Budget.Exceeded { stage = "floorplan"; _ } -> ()
  | exception _ -> Alcotest.fail "wrong exception"

(* ---- supervisor --------------------------------------------------- *)

let test_protect_outside_run_reraises () =
  match Guard.Supervisor.protect ~stage:"s" ~fallback:(fun _ -> 0)
          (fun () -> failwith "boom")
  with
  | _ -> Alcotest.fail "must re-raise outside with_run"
  | exception Failure _ -> ()

let test_protect_inside_run_degrades () =
  let v, entries =
    Guard.Supervisor.with_run (fun () ->
        Guard.Supervisor.protect ~stage:"s" ~fallback:(fun _ -> 42)
          (fun () -> failwith "boom"))
  in
  Alcotest.(check int) "fallback value" 42 v;
  match entries with
  | [ e ] ->
    Alcotest.(check string) "stage" "s" e.Guard.Supervisor.stage;
    Alcotest.(check string) "reason" "failure" e.Guard.Supervisor.reason;
    Alcotest.(check int) "count" 1 e.Guard.Supervisor.count
  | _ -> Alcotest.failf "expected one entry, got %d" (List.length entries)

let test_protect_never_absorbs_diag () =
  match
    Guard.Supervisor.with_run (fun () ->
        Guard.Supervisor.protect ~stage:"s" ~fallback:(fun _ -> 0)
          (fun () -> Guard.Diag.fail ~code:"x" ~stage:"s" "verdict"))
  with
  | _ -> Alcotest.fail "Diag.Fail must escape the supervisor"
  | exception Guard.Diag.Fail _ -> ()

let test_with_run_dedups_and_sorts () =
  let (), entries =
    Guard.Supervisor.with_run (fun () ->
        Alcotest.(check bool) "not yet degraded" false (Guard.Supervisor.degraded ());
        for _ = 1 to 3 do
          ignore
            (Guard.Supervisor.protect ~stage:"b" ~fallback:(fun _ -> ())
               (fun () -> failwith "boom"))
        done;
        ignore
          (Guard.Supervisor.protect ~stage:"a" ~fallback:(fun _ -> ())
             (fun () -> failwith "boom"));
        Alcotest.(check bool) "degraded now" true (Guard.Supervisor.degraded ()))
  in
  match entries with
  | [ a; b ] ->
    Alcotest.(check string) "sorted first" "a" a.Guard.Supervisor.stage;
    Alcotest.(check string) "sorted second" "b" b.Guard.Supervisor.stage;
    Alcotest.(check int) "deduplicated count" 3 b.Guard.Supervisor.count
  | _ -> Alcotest.failf "expected two entries, got %d" (List.length entries)

let test_degraded_false_outside_run () =
  Alcotest.(check bool) "inactive" false (Guard.Supervisor.degraded ())

(* ---- audit -------------------------------------------------------- *)

let fig1_flat = lazy (Flat.elaborate (Circuitgen.Suite.fig1_design ()))

let fig1_placed = lazy (Hidap.place (Lazy.force fig1_flat))

let raw_placements (r : Hidap.result) =
  List.map
    (fun (p : Hidap.macro_placement) -> (p.Hidap.fid, p.Hidap.rect, p.Hidap.orient))
    r.Hidap.placements

let test_audit_clean_place () =
  let flat = Lazy.force fig1_flat in
  let r = Lazy.force fig1_placed in
  let report =
    Guard.Audit.run ~flat ~die:r.Hidap.die ~placements:(raw_placements r)
  in
  Alcotest.(check bool) "audit ok" true (Guard.Audit.ok report);
  Alcotest.(check int) "all placed" 16 report.Guard.Audit.placed;
  check_float "no overlap" 0.0 report.Guard.Audit.overlap_area

let perturb kind f =
  let flat = Lazy.force fig1_flat in
  let r = Lazy.force fig1_placed in
  let placements =
    match raw_placements r with
    | first :: rest -> f first rest
    | [] -> assert false
  in
  let report = Guard.Audit.run ~flat ~die:r.Hidap.die ~placements in
  Alcotest.(check bool) (kind ^ " fails audit") false (Guard.Audit.ok report);
  Alcotest.(check bool) ("violation is " ^ kind) true
    (List.exists (fun (v : Guard.Audit.violation) -> v.Guard.Audit.kind = kind)
       report.Guard.Audit.violations)

let test_audit_overlap () =
  perturb "overlap" (fun (fid, r, o) rest ->
      match rest with
      | (_, r2, _) :: _ -> (fid, { r with Rect.x = r2.Rect.x; y = r2.Rect.y }, o) :: rest
      | [] -> assert false)

let test_audit_out_of_die () =
  perturb "out-of-die" (fun (fid, r, o) rest ->
      (fid, { r with Rect.x = -1e4 }, o) :: rest)

let test_audit_footprint () =
  perturb "footprint" (fun (fid, r, o) rest ->
      (fid, { r with Rect.w = r.Rect.w /. 2.0 }, o) :: rest)

let test_audit_duplicate () =
  perturb "duplicate" (fun p rest -> p :: p :: rest)

let test_audit_non_finite () =
  perturb "non-finite" (fun (fid, r, o) rest ->
      (fid, { r with Rect.x = Float.nan }, o) :: rest)

(* ---- end-to-end: every fault site degrades to a legal placement --- *)

(* Temp checkpoint dir for the ckpt fault sites: the sites only fire
   when a session is active, so those legs place with one. *)
let fresh_ckpt_dir () =
  let dir = Filename.temp_file "hidap-ckpt-test" "" in
  Sys.remove dir;
  dir

let fig1_fingerprint flat =
  { Ckpt.State.circuit = "fig1";
    seed = Hidap.Config.default.Hidap.Config.seed;
    lambda = Hidap.Config.default.Hidap.Config.lambda;
    sa_starts = Hidap.Config.default.Hidap.Config.sa_starts;
    cells = Flat.cell_count flat;
    macro_count = Flat.macro_count flat }

(* The serve.* sites are checked engine-side by the daemon, not inside
   the placement flow — Supervisor.with_run never hits them, so the
   matrix (which expects a recorded degradation per site) skips them.
   They are exercised in test_serve.ml instead. *)
let flow_sites =
  List.filter
    (fun (site, _) -> not (String.length site >= 6 && String.sub site 0 6 = "serve."))
    Guard.Fault.sites

let test_fault_matrix () =
  let flat = Lazy.force fig1_flat in
  List.iter
    (fun (site, _) ->
      let spec = { Guard.Fault.site; nth = 1; action = Guard.Fault.Raise } in
      let is_ckpt_site = String.length site >= 4 && String.sub site 0 4 = "ckpt" in
      let r, degradations =
        Guard.Supervisor.with_run ~faults:[ spec ] (fun () ->
            let ckpt =
              if not is_ckpt_site then None
              else
                (* resume:true so the load path (and its fault site) runs
                   even on this empty store. *)
                match
                  Ckpt.Session.start ~dir:(fresh_ckpt_dir ()) ~resume:true
                    (fig1_fingerprint flat)
                with
                | Ok s -> Some s
                | Error d -> Alcotest.failf "session start failed: %a" Guard.Diag.pp d
            in
            let r = Hidap.place ?ckpt flat in
            (* reach the cell-placement site the way `place --qor` does *)
            let macros =
              List.map
                (fun (p : Hidap.macro_placement) ->
                  { Cellplace.fid = p.Hidap.fid; rect = p.Hidap.rect;
                    orient = p.Hidap.orient })
                r.Hidap.placements
            in
            let gseq = r.Hidap.gseq and ports = r.Hidap.ports in
            ignore (Evalflow.measure ~flat ~gseq ~ports ~die:r.Hidap.die ~macros);
            r)
      in
      Alcotest.(check bool) (site ^ " recorded") true
        (List.exists
           (fun (e : Guard.Supervisor.entry) -> e.Guard.Supervisor.stage = site)
           degradations);
      let report =
        Guard.Audit.run ~flat ~die:r.Hidap.die ~placements:(raw_placements r)
      in
      if not (Guard.Audit.ok report) then
        Alcotest.failf "%s: degraded placement fails audit: %a" site
          Guard.Audit.pp_summary report)
    flow_sites

let test_supervised_clean_run_identical () =
  let flat = Lazy.force fig1_flat in
  let plain = Hidap.place flat in
  let supervised, degradations =
    Guard.Supervisor.with_run (fun () -> Hidap.place flat)
  in
  Alcotest.(check int) "no degradations" 0 (List.length degradations);
  List.iter2
    (fun (a : Hidap.macro_placement) (b : Hidap.macro_placement) ->
      Alcotest.(check int) "same macro" a.Hidap.fid b.Hidap.fid;
      Alcotest.(check bool) "same rect" true (Rect.equal a.Hidap.rect b.Hidap.rect);
      Alcotest.(check bool) "same orient" true (a.Hidap.orient = b.Hidap.orient))
    plain.Hidap.placements supervised.Hidap.placements

(* ---- parser fuzz -------------------------------------------------- *)

(* Random byte-level corruption of a well-formed HNL text must never
   escape the parser as anything but a positioned [Error] — no
   exceptions, no invalid designs slipping through the validator
   unnoticed. *)
let fuzz_source =
  lazy (Hnl.Printer.to_string (Circuitgen.Suite.fig1_design ()))

let mutate rng s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let ops = 1 + Util.Rng.int rng 4 in
  let garbage = "{}()[];:=$#\x00\xff aZ09._-\"\n" in
  for _ = 1 to ops do
    match Util.Rng.int rng 3 with
    | 0 when n > 0 ->
      (* flip one byte *)
      let i = Util.Rng.int rng n in
      Bytes.set b i garbage.[Util.Rng.int rng (String.length garbage)]
    | _ -> ()
  done;
  let s = Bytes.to_string b in
  (* sometimes truncate *)
  if n > 0 && Util.Rng.int rng 4 = 0 then String.sub s 0 (Util.Rng.int rng n)
  else s

let test_parser_fuzz () =
  let src = Lazy.force fuzz_source in
  let rng = Util.Rng.create 0xF422 in
  for _ = 1 to 200 do
    let text = mutate rng src in
    match Hnl.Parser.parse_string text with
    | Error { Hnl.Parser.line; col; message } ->
      Alcotest.(check bool) "line is sane" true (line >= 0);
      Alcotest.(check bool) "col is sane" true (col >= 0);
      Alcotest.(check bool) "message non-empty" true (String.length message > 0)
    | Ok design -> (
      (* accepted text must still be a design the validator can pass
         or reject with diagnostics — never crash downstream *)
      match Guard.Validate.design design with
      | Ok _ | Error _ -> ())
    | exception e ->
      Alcotest.failf "parser raised %s on mutated input" (Printexc.to_string e)
  done

let suite =
  [ ( "guard",
      [ Alcotest.test_case "validate clean design" `Quick test_validate_clean;
        Alcotest.test_case "validate dangling binding" `Quick
          test_validate_dangling_binding;
        Alcotest.test_case "validate strict escalates" `Quick
          test_validate_strict_escalates;
        Alcotest.test_case "validate missing module" `Quick
          test_validate_missing_module;
        Alcotest.test_case "validate bad area" `Quick test_validate_bad_area;
        Alcotest.test_case "validate macro exceeds die" `Quick
          test_validate_flat_macro_exceeds_die;
        Alcotest.test_case "fault spec parsing" `Quick test_fault_parse;
        Alcotest.test_case "fault hit counting" `Quick test_fault_hit_counts;
        Alcotest.test_case "budget parse and trip" `Quick
          test_budget_parse_and_check;
        Alcotest.test_case "protect re-raises outside run" `Quick
          test_protect_outside_run_reraises;
        Alcotest.test_case "protect degrades inside run" `Quick
          test_protect_inside_run_degrades;
        Alcotest.test_case "protect never absorbs Diag.Fail" `Quick
          test_protect_never_absorbs_diag;
        Alcotest.test_case "ledger dedups and sorts" `Quick
          test_with_run_dedups_and_sorts;
        Alcotest.test_case "degraded false outside run" `Quick
          test_degraded_false_outside_run;
        Alcotest.test_case "audit clean placement" `Quick test_audit_clean_place;
        Alcotest.test_case "audit catches overlap" `Quick test_audit_overlap;
        Alcotest.test_case "audit catches out-of-die" `Quick test_audit_out_of_die;
        Alcotest.test_case "audit catches footprint" `Quick test_audit_footprint;
        Alcotest.test_case "audit catches duplicate" `Quick test_audit_duplicate;
        Alcotest.test_case "audit catches non-finite" `Quick test_audit_non_finite;
        Alcotest.test_case "every fault site stays audit-clean" `Slow
          test_fault_matrix;
        Alcotest.test_case "supervised clean run identical" `Quick
          test_supervised_clean_run_identical;
        Alcotest.test_case "parser fuzz never crashes" `Quick test_parser_fuzz ] ) ]
