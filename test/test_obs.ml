(* Tests for the observability library: spans, Chrome-trace export,
   metrics registry, SA plateau observer, and the guarantee that turning
   telemetry on does not perturb placement results. *)

module Span = Obs.Span
module Trace = Obs.Trace
module Metrics = Obs.Metrics
module Jsonx = Obs.Jsonx
module Sa = Anneal.Sa

(* Run [f] under a virtual clock that advances 1 s per reading, with the
   recorder active; restores the wall clock and stops recording after. *)
let with_fake_trace f =
  let t = ref 0.0 in
  Obs.Clock.set_source (fun () ->
      let v = !t in
      t := v +. 1.0;
      v);
  Trace.start ();
  Fun.protect
    ~finally:(fun () ->
      ignore (Trace.finish ());
      Obs.Clock.use_wall ())
    (fun () ->
      let r = f () in
      let spans = Trace.finish () in
      (r, spans))

let test_span_nesting () =
  let (), spans =
    with_fake_trace (fun () ->
        Span.with_ ~name:"root" (fun () ->
            Span.with_ ~name:"a" (fun () -> Span.attr_int "k" 7);
            Span.with_ ~name:"b" (fun () -> ())))
  in
  match spans with
  | [ root ] ->
    Alcotest.(check string) "root name" "root" root.Span.name;
    Alcotest.(check (list string)) "children in execution order" [ "a"; "b" ]
      (List.map (fun (c : Span.t) -> c.Span.name) root.Span.children);
    (* clock readings: root opens at 0s, a at 1s..2s, b at 3s..4s, root
       closes at 5s; each with_ takes two readings. *)
    Alcotest.(check (float 1e-6)) "root start" 0.0 root.Span.start_us;
    Alcotest.(check (float 1e-6)) "root duration" 5e6 root.Span.dur_us;
    (match root.Span.children with
    | [ a; b ] ->
      Alcotest.(check (float 1e-6)) "a start" 1e6 a.Span.start_us;
      Alcotest.(check (float 1e-6)) "a duration" 1e6 a.Span.dur_us;
      Alcotest.(check (float 1e-6)) "b start" 3e6 b.Span.start_us;
      Alcotest.(check (list (pair string string))) "attr recorded"
        [ ("k", "7") ] a.Span.attrs
    | _ -> Alcotest.fail "expected two children")
  | _ -> Alcotest.fail "expected one root span"

let test_span_disabled_is_transparent () =
  Alcotest.(check bool) "recording off" false (Span.enabled ());
  let r = Span.with_ ~name:"ignored" (fun () -> 42) in
  Span.attr_int "nobody" 1;
  Alcotest.(check int) "value passed through" 42 r

let test_span_survives_exception () =
  let (), spans =
    with_fake_trace (fun () ->
        try Span.with_ ~name:"boom" (fun () -> failwith "x")
        with Failure _ -> ())
  in
  match spans with
  | [ sp ] ->
    Alcotest.(check string) "span closed" "boom" sp.Span.name;
    Alcotest.(check bool) "has duration" true (sp.Span.dur_us > 0.0)
  | _ -> Alcotest.fail "expected one root span"

let test_chrome_json () =
  let (), spans =
    with_fake_trace (fun () ->
        Span.with_ ~name:"outer" (fun () ->
            Span.with_ ~name:"inner" (fun () -> Span.attr_str "file" "c1")))
  in
  match Trace.to_chrome_json spans with
  | Jsonx.List events ->
    Alcotest.(check int) "one event per span" 2 (List.length events);
    List.iter
      (fun ev ->
        List.iter
          (fun field ->
            Alcotest.(check bool)
              (Printf.sprintf "event has %s" field)
              true
              (Jsonx.member field ev <> None))
          [ "name"; "ph"; "ts"; "dur"; "pid"; "tid" ];
        Alcotest.(check bool) "complete event" true
          (Jsonx.member "ph" ev = Some (Jsonx.String "X")))
      events;
    (* parents come first and timestamps are rebased to the first span *)
    (match events with
    | [ outer; inner ] ->
      Alcotest.(check bool) "outer first" true
        (Jsonx.member "name" outer = Some (Jsonx.String "outer"));
      Alcotest.(check bool) "outer ts rebased to 0" true
        (Jsonx.member "ts" outer = Some (Jsonx.Float 0.0));
      Alcotest.(check bool) "inner has args" true
        (Jsonx.member "args" inner <> None)
    | _ -> Alcotest.fail "expected two events")
  | _ -> Alcotest.fail "expected a JSON array"

let test_jsonx_rendering () =
  let doc =
    Jsonx.Obj
      [ ("a", Jsonx.Int 1);
        ("b", Jsonx.List [ Jsonx.Null; Jsonx.Bool true; Jsonx.String "x\"y\n" ]);
        ("c", Jsonx.Float 0.25);
        ("nan", Jsonx.Float Float.nan) ]
  in
  Alcotest.(check string) "compact rendering"
    {|{"a":1,"b":[null,true,"x\"y\n"],"c":0.25,"nan":"NaN"}|}
    (Jsonx.to_string ~compact:true doc)

(* Non-finite floats must survive a serialize/parse cycle: they are
   emitted as sentinel strings (JSON has no literal for them) and
   [to_float_opt] maps the sentinels back. A QoR record with a NaN
   metric used to come back unreadable because the old rendering
   collapsed the value to [null]. *)
let test_jsonx_nonfinite_roundtrip () =
  List.iter
    (fun f ->
      let rendered = Jsonx.to_string ~compact:true (Jsonx.Float f) in
      match Jsonx.parse rendered with
      | Error msg -> Alcotest.failf "%s failed to parse back: %s" rendered msg
      | Ok j ->
        (match Jsonx.to_float_opt j with
        | None -> Alcotest.failf "%s lost its float value" rendered
        | Some f' ->
          Alcotest.(check bool)
            (rendered ^ " round-trips bit-exactly")
            true
            (Int64.bits_of_float f = Int64.bits_of_float f')))
    [ Float.nan; Float.infinity; Float.neg_infinity; 0.25 ];
  (* plain strings that merely look numeric must not become floats *)
  Alcotest.(check bool) "ordinary string stays a string" true
    (Jsonx.to_float_opt (Jsonx.String "fast") = None)

let test_percentiles () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Metrics.percentile xs ~p:0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.5 (Metrics.percentile xs ~p:50.0);
  Alcotest.(check (float 1e-9)) "p90" 90.1 (Metrics.percentile xs ~p:90.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Metrics.percentile xs ~p:100.0);
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (Metrics.percentile [ 7.0 ] ~p:90.0)

let test_registry_basics () =
  let r = Metrics.create () in
  Metrics.incr_counter r "runs" 2;
  Metrics.incr_counter r "runs" 3;
  Metrics.set_gauge r "wl" 10.0;
  Metrics.set_gauge r "wl" 11.5;
  Metrics.observe ~bin_width:0.5 r "rate" 0.6;
  Metrics.observe r "rate" 1.4;
  Metrics.push_series r "curve" 1.0 0.9;
  Metrics.push_series r "curve" 2.0 0.8;
  Alcotest.(check (option int)) "counter accumulates" (Some 5)
    (Metrics.counter_value r "runs");
  Alcotest.(check (option (float 0.0))) "gauge keeps last" (Some 11.5)
    (Metrics.gauge_value r "wl");
  Alcotest.(check (list (float 1e-9))) "samples in order" [ 0.6; 1.4 ]
    (Metrics.hist_samples r "rate");
  Alcotest.(check (list (pair (float 0.0) (float 0.0)))) "series in order"
    [ (1.0, 0.9); (2.0, 0.8) ]
    (Metrics.series_points r "curve");
  Alcotest.(check (list string)) "names sorted" [ "curve"; "rate"; "runs"; "wl" ]
    (Metrics.names r)

let test_registry_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr_counter a "n" 1;
  Metrics.incr_counter b "n" 10;
  Metrics.incr_counter a "only_a" 4;
  Metrics.set_gauge a "g" 1.0;
  Metrics.set_gauge b "g" 2.0;
  Metrics.observe a "h" 1.0;
  Metrics.observe b "h" 3.0;
  Metrics.push_series a "s" 0.0 1.0;
  Metrics.push_series b "s" 1.0 2.0;
  let m = Metrics.merge a b in
  Alcotest.(check (option int)) "counters add" (Some 11) (Metrics.counter_value m "n");
  Alcotest.(check (option int)) "left-only kept" (Some 4)
    (Metrics.counter_value m "only_a");
  Alcotest.(check (option (float 0.0))) "gauge right wins" (Some 2.0)
    (Metrics.gauge_value m "g");
  Alcotest.(check (list (float 1e-9))) "histograms pool" [ 1.0; 3.0 ]
    (Metrics.hist_samples m "h");
  Alcotest.(check (list (pair (float 0.0) (float 0.0)))) "series concatenate"
    [ (0.0, 1.0); (1.0, 2.0) ]
    (Metrics.series_points m "s");
  (* merge leaves its inputs untouched *)
  Alcotest.(check (option int)) "left input intact" (Some 1)
    (Metrics.counter_value a "n")

let test_global_gating () =
  Metrics.reset Metrics.global;
  Metrics.set_enabled false;
  Metrics.counter "gated" 1;
  Alcotest.(check (option int)) "disabled shorthand drops" None
    (Metrics.counter_value Metrics.global "gated");
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset Metrics.global)
    (fun () ->
      Metrics.counter "gated" 1;
      Alcotest.(check (option int)) "enabled shorthand records" (Some 1)
        (Metrics.counter_value Metrics.global "gated"))

(* The SA observer sees every plateau and cannot change the outcome. *)
let test_sa_observer () =
  let cost x = (x -. 3.0) *. (x -. 3.0) in
  let neighbor rng x = x +. Util.Rng.gaussian rng ~mean:0.0 ~stddev:0.5 in
  let run ?observer () =
    Sa.minimize ~rng:(Util.Rng.create 11) ~init:10.0 ~cost ~neighbor ?observer ()
  in
  let plateaus = ref [] in
  let observed = run ~observer:(fun p -> plateaus := p :: !plateaus) () in
  let plain = run () in
  Alcotest.(check (float 0.0)) "observer does not change the best" plain.Sa.best
    observed.Sa.best;
  Alcotest.(check int) "observer does not change the move count" plain.Sa.moves
    observed.Sa.moves;
  let ps = List.rev !plateaus in
  Alcotest.(check int) "one callback per plateau" observed.Sa.plateaus
    (List.length ps);
  Alcotest.(check (list int)) "plateau indices in order"
    (List.init (List.length ps) (fun i -> i))
    (List.map (fun p -> p.Sa.index) ps);
  List.iter
    (fun p ->
      let r = Sa.acceptance_rate p in
      Alcotest.(check bool) "acceptance rate in [0,1]" true (r >= 0.0 && r <= 1.0))
    ps;
  (match ps with
  | p0 :: (_ :: _ as rest) ->
    let last = List.nth rest (List.length rest - 1) in
    Alcotest.(check bool) "temperature cools" true
      (last.Sa.temperature < p0.Sa.temperature);
    Alcotest.(check int) "total moves accounted" observed.Sa.moves
      last.Sa.total_moves
  | _ -> Alcotest.fail "expected several plateaus")

(* Enabling the full telemetry stack must not change placements. *)
let test_place_determinism_under_tracing () =
  let flat = Netlist.Flat.elaborate (Circuitgen.Suite.fig1_design ()) in
  let plain = Hidap.place flat in
  Metrics.reset Metrics.global;
  Metrics.set_enabled true;
  Trace.start ();
  let traced, spans, n_metrics =
    Fun.protect
      ~finally:(fun () ->
        ignore (Trace.finish ());
        Metrics.set_enabled false;
        Metrics.reset Metrics.global)
      (fun () ->
        let r = Hidap.place flat in
        let spans = Trace.finish () in
        (r, spans, List.length (Metrics.names Metrics.global)))
  in
  Alcotest.(check bool) "identical placements" true
    (plain.Hidap.placements = traced.Hidap.placements);
  Alcotest.(check (float 0.0)) "identical lambda" plain.Hidap.lambda
    traced.Hidap.lambda;
  Alcotest.(check bool) "trace captured the flow" true
    (match spans with
    | [ root ] -> root.Span.name = "hidap.place" && root.Span.children <> []
    | _ -> false);
  Alcotest.(check bool) "at least 8 named metrics" true (n_metrics >= 8)

(* Perf counters are merged in task order at every join point, so the
   merged totals — and the placement itself — must be bit-identical for
   every job count (DESIGN.md §9/§12). *)
let test_perf_merge_determinism () =
  let flat = Netlist.Flat.elaborate (Circuitgen.Suite.fig1_design ()) in
  let run jobs =
    let config = { Hidap.Config.default with Hidap.Config.jobs } in
    Obs.Perf.reset Obs.Perf.global;
    Obs.Perf.set_enabled true;
    Fun.protect
      ~finally:(fun () -> Obs.Perf.set_enabled false)
      (fun () ->
        let r = Hidap.place ~config flat in
        let counts = Obs.Perf.to_assoc Obs.Perf.global in
        Obs.Perf.reset Obs.Perf.global;
        (r, counts))
  in
  let base, counts1 = run 1 in
  List.iter
    (fun jobs ->
      let r, counts = run jobs in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d placement identical to jobs=1" jobs)
        true
        (r.Hidap.placements = base.Hidap.placements);
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "jobs=%d merged counters identical to jobs=1" jobs)
        counts1 counts)
    [ 2; 4 ];
  Alcotest.(check bool) "sa.moves counted" true
    (List.assoc "sa.moves" counts1 > 0);
  Alcotest.(check int) "moves split into accepts + rejects"
    (List.assoc "sa.moves" counts1)
    (List.assoc "sa.accepts" counts1 + List.assoc "sa.rejects" counts1);
  Alcotest.(check bool) "instances counted" true
    (List.assoc "floorplan.instances" counts1 > 0)

(* The sampler's collapsed-stack output: root-first stacks joined with
   ';', "(idle)" for an empty stack, sorted buckets, positive counts. *)
let test_sampler_collapsed_stacks () =
  Alcotest.(check string) "empty stack is idle" "(idle)" (Obs.Sampler.collapse []);
  Alcotest.(check string) "innermost-first input collapses root-first"
    "root;mid;leaf"
    (Obs.Sampler.collapse [ "leaf"; "mid"; "root" ]);
  Alcotest.(check (list string)) "one line per bucket"
    [ "hidap.place;floorplan.run 41"; "(idle) 3" ]
    (Obs.Sampler.to_collapsed_lines
       [ ("hidap.place;floorplan.run", 41); ("(idle)", 3) ]);
  (* live run: sample deterministically via sample_now inside a nested
     span, plus stop's forced final sample outside any span *)
  Trace.start ();
  Obs.Sampler.start ~interval_ms:1000.0 ();
  let samples =
    Fun.protect
      ~finally:(fun () -> ignore (Trace.finish ()))
      (fun () ->
        Span.with_ ~name:"outer" (fun () ->
            Span.with_ ~name:"inner" (fun () -> Obs.Sampler.sample_now ()));
        Obs.Sampler.stop ())
  in
  Alcotest.(check bool) "sampler stopped" false (Obs.Sampler.running ());
  Alcotest.(check bool) "captured samples" true (samples <> []);
  let stacks = List.map fst samples in
  Alcotest.(check (list string)) "buckets sorted by stack"
    (List.sort compare stacks) stacks;
  List.iter
    (fun (stack, n) ->
      Alcotest.(check bool) (stack ^ ": positive count") true (n > 0);
      Alcotest.(check bool) (stack ^ ": no empty frames") true
        (stack <> ""
        && List.for_all
             (fun f -> f <> "")
             (String.split_on_char ';' stack)))
    samples;
  Alcotest.(check bool) "sample_now saw the nested stack" true
    (List.mem_assoc "outer;inner" samples)

(* Every progress line must parse back through Jsonx with the standard
   envelope and the documented per-event fields (DESIGN.md §12). *)
let test_stream_ndjson_roundtrip () =
  let path = Filename.temp_file "hidap_progress" ".ndjson" in
  Obs.Stream.enable ~heartbeat_s:0.0 ~close_on_disable:true (open_out path);
  Obs.Stream.run_start ~circuit:"c1" ~seed:42 ~jobs:2;
  Obs.Stream.stage_start "floorplan";
  Obs.Stream.sa_progress ~instance:1 ~instances:11 ~temperature:0.5
    ~best_cost:123.25 ~moves:1000 ~moves_per_s:2.5e5 ();
  Obs.Stream.stage_end "floorplan" ~dur_us:1.5e6 ~ok:true;
  Obs.Stream.checkpoint ~seq:3 ~file:"ckpt/000003.snap";
  Obs.Stream.degradation ~stage:"cellplace" ~reason:"budget exceeded";
  Obs.Stream.run_end ~status:"ok";
  Obs.Stream.disable ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let events =
    List.rev_map
      (fun line ->
        match Jsonx.parse line with
        | Error msg -> Alcotest.failf "unparseable line %S: %s" line msg
        | Ok j ->
          Alcotest.(check bool) "envelope schema" true
            (Jsonx.member "schema" j
            = Some (Jsonx.String Obs.Stream.schema));
          Alcotest.(check bool) "envelope version" true
            (Jsonx.member "version" j = Some (Jsonx.Int Obs.Stream.version));
          Alcotest.(check bool) "envelope timestamp" true
            (match Jsonx.member "t_us" j with
            | Some t -> Jsonx.to_float_opt t <> None
            | None -> false);
          (match Jsonx.member "event" j with
          | Some (Jsonx.String e) -> (e, j)
          | _ -> Alcotest.failf "line without event: %S" line))
      !lines
  in
  Alcotest.(check (list string)) "event order"
    [ "run-start"; "stage-start"; "sa-progress"; "stage-end"; "checkpoint";
      "degradation"; "run-end" ]
    (List.map fst events);
  let sa = List.assoc "sa-progress" events in
  List.iter
    (fun (field, v) ->
      Alcotest.(check bool) ("sa-progress " ^ field) true
        (Jsonx.member field sa = Some v))
    [ ("instance", Jsonx.Int 1); ("instances", Jsonx.Int 11);
      ("moves", Jsonx.Int 1000); ("best_cost", Jsonx.Float 123.25) ];
  Alcotest.(check bool) "run-end status" true
    (Jsonx.member "status" (List.assoc "run-end" events)
    = Some (Jsonx.String "ok"));
  Alcotest.(check bool) "stream detached" false (Obs.Stream.enabled ())

(* Emitters racing disable: disable must be idempotent, never raise,
   and never leave a torn line — every byte in the file parses as one
   complete NDJSON document, even when emits from several domains and
   the heartbeat were in flight while the sink closed (DESIGN.md §15
   relies on this: the serve worker disables the relay stream while a
   watcher fan-out still runs). *)
let test_stream_emit_disable_race () =
  for round = 1 to 8 do
    let path = Filename.temp_file "hidap_stream_race" ".ndjson" in
    Obs.Stream.enable ~heartbeat_s:0.001 ~close_on_disable:true (open_out path);
    Obs.Stream.run_start ~circuit:"race" ~seed:round ~jobs:4;
    let stop = Atomic.make false in
    let emitters =
      List.init 4 (fun d ->
          Domain.spawn (fun () ->
              let n = ref 0 in
              while not (Atomic.get stop) && !n < 50_000 do
                incr n;
                Obs.Stream.checkpoint ~seq:!n
                  ~file:(Printf.sprintf "d%d/%06d.snap" d !n)
              done))
    in
    (* disable in the middle of the barrage, then again: idempotent *)
    Unix.sleepf 0.002;
    (match Obs.Stream.disable () with
    | () -> ()
    | exception e ->
      Alcotest.failf "disable raised %s" (Printexc.to_string e));
    Obs.Stream.disable ();
    Atomic.set stop true;
    List.iter Domain.join emitters;
    Alcotest.(check bool) "stream detached" false (Obs.Stream.enabled ());
    (* late emits on the closed stream must be no-ops, not crashes *)
    Obs.Stream.checkpoint ~seq:0 ~file:"late.snap";
    let ic = open_in path in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match Jsonx.parse line with
           | Ok j ->
             Alcotest.(check bool) "line has the stream envelope" true
               (Jsonx.member "schema" j = Some (Jsonx.String Obs.Stream.schema))
           | Error msg -> Alcotest.failf "torn line %S: %s" line msg
       done
     with End_of_file -> ());
    close_in ic;
    Sys.remove path
  done

let suite =
  [ ( "obs",
      [ Alcotest.test_case "span nesting and timing" `Quick test_span_nesting;
        Alcotest.test_case "disabled spans are transparent" `Quick
          test_span_disabled_is_transparent;
        Alcotest.test_case "span closed on exception" `Quick
          test_span_survives_exception;
        Alcotest.test_case "chrome trace export" `Quick test_chrome_json;
        Alcotest.test_case "jsonx rendering" `Quick test_jsonx_rendering;
        Alcotest.test_case "jsonx non-finite round-trip" `Quick
          test_jsonx_nonfinite_roundtrip;
        Alcotest.test_case "percentile math" `Quick test_percentiles;
        Alcotest.test_case "registry basics" `Quick test_registry_basics;
        Alcotest.test_case "registry merge" `Quick test_registry_merge;
        Alcotest.test_case "global registry gating" `Quick test_global_gating;
        Alcotest.test_case "sa plateau observer" `Quick test_sa_observer;
        Alcotest.test_case "sampler collapsed stacks" `Quick
          test_sampler_collapsed_stacks;
        Alcotest.test_case "progress stream NDJSON round-trip" `Quick
          test_stream_ndjson_roundtrip;
        Alcotest.test_case "emit/disable race leaves no torn lines" `Slow
          test_stream_emit_disable_race;
        Alcotest.test_case "perf counter merge determinism" `Slow
          test_perf_merge_determinism;
        Alcotest.test_case "tracing preserves determinism" `Slow
          test_place_determinism_under_tracing ] ) ]
