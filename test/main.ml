(* Entry point aggregating every library's test suite. *)
let () =
  Alcotest.run "hidap"
    (Test_util.suite @ Test_geom.suite @ Test_graphlib.suite @ Test_netlist.suite
    @ Test_hnl.suite @ Test_hier.suite @ Test_seqgraph.suite @ Test_dataflow.suite
    @ Test_shape.suite @ Test_anneal.suite @ Test_slicing.suite @ Test_core.suite
    @ Test_substrates.suite @ Test_toolchain.suite @ Test_extras.suite
    @ Test_integration.suite @ Test_properties.suite @ Test_attrib.suite
    @ Test_incremental.suite @ Test_obs.suite @ Test_qor.suite
    @ Test_parexec.suite @ Test_guard.suite @ Test_ckpt.suite @ Test_serve.suite)
