(* Tests for Polish expressions and the top-down area-budgeting layout
   (paper §IV-E, Fig 8). *)

module Polish = Slicing.Polish
module Layout = Slicing.Layout
module Rect = Geom.Rect
module Curve = Shape.Curve

let check_float = Alcotest.(check (float 1e-6))

let qtest ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ---- Polish ------------------------------------------------------- *)

let test_initial_normalized () =
  for n = 1 to 12 do
    let e = Polish.initial ~n in
    Alcotest.(check bool) "normalized" true (Polish.is_normalized (Polish.elements e));
    Alcotest.(check int) "operand count" n (Polish.operand_count e);
    Alcotest.(check int) "length" ((2 * n) - 1) (Polish.length e)
  done

let test_initial_random_normalized () =
  let rng = Util.Rng.create 3 in
  for n = 1 to 12 do
    let e = Polish.initial_random rng ~n in
    Alcotest.(check bool) "normalized" true (Polish.is_normalized (Polish.elements e));
    (* all operands present exactly once *)
    let ops =
      Array.to_list (Polish.elements e)
      |> List.filter_map (function Polish.Operand i -> Some i | Polish.Operator _ -> None)
      |> List.sort compare
    in
    Alcotest.(check (list int)) "operands 0..n-1" (List.init n (fun i -> i)) ops
  done

let test_of_elements_validation () =
  (* operator first violates balloting *)
  (match Polish.of_elements [| Polish.Operator Polish.V; Polish.Operand 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection");
  (* two equal adjacent operators (the skewed duplicate of a slicing
     tree) must be rejected *)
  (match
     Polish.of_elements
       [| Polish.Operand 0; Polish.Operand 1; Polish.Operand 2;
          Polish.Operator Polish.V; Polish.Operator Polish.V |]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of VV chain");
  (* same shape with alternating operators is fine *)
  match
    Polish.of_elements
      [| Polish.Operand 0; Polish.Operand 1; Polish.Operand 2;
         Polish.Operator Polish.V; Polish.Operator Polish.H |]
  with
  | exception Invalid_argument _ -> Alcotest.fail "alternating chain should be accepted"
  | _ -> ()

let test_is_normalized_rejects_skew () =
  let bad =
    [| Polish.Operand 0; Polish.Operand 1; Polish.Operator Polish.V;
       Polish.Operand 2; Polish.Operator Polish.V |]
  in
  Alcotest.(check bool) "chain with equal adjacent ops rejected" false
    (Polish.is_normalized
       [| Polish.Operand 0; Polish.Operand 1; Polish.Operand 2;
          Polish.Operator Polish.V; Polish.Operator Polish.V |]);
  Alcotest.(check bool) "alternating accepted" true (Polish.is_normalized bad)

let perturb_preserves_normalization =
  qtest "perturb preserves normalization and operands"
    QCheck.(pair small_int (int_range 2 15))
    (fun (seed, n) ->
      let rng = Util.Rng.create seed in
      let e = ref (Polish.initial ~n) in
      let ok = ref true in
      for _ = 1 to 50 do
        e := Polish.perturb rng !e;
        if not (Polish.is_normalized (Polish.elements !e)) then ok := false;
        if Polish.operand_count !e <> n then ok := false
      done;
      !ok)

let test_perturb_single_operand () =
  let rng = Util.Rng.create 1 in
  let e = Polish.initial ~n:1 in
  let e' = Polish.perturb rng e in
  Alcotest.(check int) "unchanged" 1 (Polish.operand_count e')

(* ---- Layout ------------------------------------------------------- *)

let soft_leaves ats =
  Array.of_list
    (List.mapi
       (fun i at ->
         { Layout.lid = i; curve = Curve.unconstrained; area_min = at; area_target = at })
       ats)

let budget = Rect.make ~x:0.0 ~y:0.0 ~w:3.0 ~h:3.0

let test_fig8_regression () =
  (* the paper's Fig 8: exact proportional rectangles *)
  let leaves = soft_leaves [ 1.0; 2.0; 1.5; 2.0; 2.5 ] in
  let expr =
    Polish.of_elements
      [| Polish.Operand 0; Polish.Operand 1; Polish.Operator Polish.V;
         Polish.Operand 2; Polish.Operator Polish.H; Polish.Operand 3;
         Polish.Operand 4; Polish.Operator Polish.V; Polish.Operator Polish.H |]
  in
  let p = Layout.evaluate expr ~leaves ~budget in
  let rect lid = List.assoc lid p.Layout.rects in
  List.iter
    (fun (lid, at) -> check_float (Printf.sprintf "leaf %d takes its at" lid) at (Rect.area (rect lid)))
    [ (0, 1.0); (1, 2.0); (2, 1.5); (3, 2.0); (4, 2.5) ];
  check_float "no at shift" 0.0 p.Layout.viol.Layout.at_shift;
  check_float "no am deficit" 0.0 p.Layout.viol.Layout.am_deficit;
  check_float "no macro deficit" 0.0 p.Layout.viol.Layout.macro_deficit

let test_two_leaf_cuts () =
  let leaves = soft_leaves [ 1.0; 2.0 ] in
  let v =
    Polish.of_elements [| Polish.Operand 0; Polish.Operand 1; Polish.Operator Polish.V |]
  in
  let p = Layout.evaluate v ~leaves ~budget in
  let r0 = List.assoc 0 p.Layout.rects and r1 = List.assoc 1 p.Layout.rects in
  check_float "V cut: left third" 1.0 r0.Rect.w;
  check_float "V cut: full height" 3.0 r0.Rect.h;
  check_float "right starts after left" 1.0 r1.Rect.x;
  let h =
    Polish.of_elements [| Polish.Operand 0; Polish.Operand 1; Polish.Operator Polish.H |]
  in
  let p = Layout.evaluate h ~leaves ~budget in
  let r0 = List.assoc 0 p.Layout.rects in
  check_float "H cut: bottom third" 1.0 r0.Rect.h;
  check_float "H cut: full width" 3.0 r0.Rect.w

let random_expr rng n =
  let e = ref (Polish.initial_random rng ~n) in
  for _ = 1 to 20 do
    e := Polish.perturb rng !e
  done;
  !e

(* ---- M1/M2/M3 move laws (Wong–Liu; paper §IV-E) -------------------- *)

let operand_list e =
  Array.to_list (Polish.elements e)
  |> List.filter_map (function Polish.Operand i -> Some i | Polish.Operator _ -> None)

let move_preserves_invariants name move =
  qtest
    (Printf.sprintf "%s: None or normalized with the same operand multiset" name)
    QCheck.(pair small_int (int_range 1 12))
    (fun (seed, n) ->
      let rng = Util.Rng.create seed in
      let e = random_expr rng n in
      match move rng e with
      | None -> true
      | Some e' ->
        Polish.is_normalized (Polish.elements e')
        && Polish.operand_count e' = n
        && List.sort compare (operand_list e') = List.sort compare (operand_list e))

let m1_preserves = move_preserves_invariants "M1" Polish.move_m1
let m2_preserves = move_preserves_invariants "M2" Polish.move_m2
let m3_preserves = move_preserves_invariants "M3" Polish.move_m3

(* M1 swaps adjacent operands: every operator stays at its position with
   its value. *)
let m1_touches_operands_only =
  qtest "M1 leaves the operator skeleton untouched"
    QCheck.(pair small_int (int_range 2 12))
    (fun (seed, n) ->
      let rng = Util.Rng.create seed in
      let e = random_expr rng n in
      match Polish.move_m1 rng e with
      | None -> true
      | Some e' ->
        Array.for_all2
          (fun a b ->
            match (a, b) with
            | Polish.Operator x, Polish.Operator y -> x = y
            | Polish.Operand _, Polish.Operand _ -> true
            | _ -> false)
          (Polish.elements e) (Polish.elements e'))

(* M2 complements an operator chain: the operand subsequence is unchanged
   in order, and every element keeps its operand/operator kind. *)
let m2_touches_operators_only =
  qtest "M2 leaves the operand order untouched"
    QCheck.(pair small_int (int_range 2 12))
    (fun (seed, n) ->
      let rng = Util.Rng.create seed in
      let e = random_expr rng n in
      match Polish.move_m2 rng e with
      | None -> true
      | Some e' ->
        operand_list e' = operand_list e
        && Array.for_all2
             (fun a b ->
               match (a, b) with
               | Polish.Operator _, Polish.Operator _ -> true
               | Polish.Operand i, Polish.Operand j -> i = j
               | _ -> false)
             (Polish.elements e) (Polish.elements e'))

let layout_partitions_budget =
  qtest "layout partitions the budget exactly with no overlap"
    QCheck.(pair small_int (int_range 1 10))
    (fun (seed, n) ->
      let rng = Util.Rng.create seed in
      let ats = List.init n (fun i -> 1.0 +. float_of_int ((seed + i) mod 5)) in
      let leaves = soft_leaves ats in
      let expr = random_expr rng n in
      let p = Layout.evaluate expr ~leaves ~budget in
      let rects = List.map snd p.Layout.rects in
      let total = List.fold_left (fun acc r -> acc +. Rect.area r) 0.0 rects in
      let no_overlap =
        let rec check = function
          | [] -> true
          | r :: rest -> List.for_all (fun r' -> not (Rect.overlaps r r')) rest && check rest
        in
        check rects
      in
      let inside = List.for_all (fun r -> Rect.contains_rect ~outer:budget ~inner:r) rects in
      abs_float (total -. Rect.area budget) < 1e-6 && no_overlap && inside)

let test_macro_leaf_gets_space () =
  (* one macro leaf needing 2x2 next to a soft leaf; budget is 3x3 so the
     macro child must be widened beyond its proportional share *)
  let leaves =
    [| { Layout.lid = 0; curve = Curve.of_macro ~w:2.0 ~h:2.0 (); area_min = 4.0;
         area_target = 4.0 };
       { Layout.lid = 1; curve = Curve.unconstrained; area_min = 20.0; area_target = 20.0 } |]
  in
  let expr =
    Polish.of_elements [| Polish.Operand 0; Polish.Operand 1; Polish.Operator Polish.V |]
  in
  let p = Layout.evaluate expr ~leaves ~budget in
  let r0 = List.assoc 0 p.Layout.rects in
  Alcotest.(check bool) "macro child wide enough" true (r0.Rect.w >= 2.0 -. 1e-9);
  check_float "macro fits: no macro deficit" 0.0 p.Layout.viol.Layout.macro_deficit;
  Alcotest.(check bool) "the shift is reported" true (p.Layout.viol.Layout.at_shift > 0.0)

let test_infeasible_macro_reports_deficit () =
  (* macro bigger than the entire budget *)
  let leaves =
    [| { Layout.lid = 0; curve = Curve.of_macro ~w:5.0 ~h:4.0 (); area_min = 20.0;
         area_target = 20.0 } |]
  in
  let expr = Polish.of_elements [| Polish.Operand 0 |] in
  let p = Layout.evaluate expr ~leaves ~budget in
  Alcotest.(check bool) "macro deficit reported" true
    (p.Layout.viol.Layout.macro_deficit > 0.0)

let test_penalty_weights () =
  let v = { Layout.at_shift = 1.0; am_deficit = 2.0; macro_deficit = 3.0 } in
  check_float "weighted sum" (1.0 +. 4.0 +. 15.0)
    (Layout.penalty v ~at_w:1.0 ~am_w:2.0 ~macro_w:5.0)

let test_tree_curve () =
  let leaves =
    [| { Layout.lid = 0; curve = Curve.of_macro ~w:2.0 ~h:1.0 (); area_min = 2.0;
         area_target = 2.0 };
       { Layout.lid = 1; curve = Curve.of_macro ~w:2.0 ~h:1.0 (); area_min = 2.0;
         area_target = 2.0 } |]
  in
  let v =
    Polish.of_elements [| Polish.Operand 0; Polish.Operand 1; Polish.Operator Polish.V |]
  in
  let c = Layout.tree_curve v ~leaves in
  (* side-by-side: e.g. 4x1, 2x2, ... min area 4 *)
  check_float "composed min area" 4.0 (Curve.min_area c);
  Alcotest.(check bool) "4x1 feasible" true (Curve.fits c ~w:4.0 ~h:1.0);
  Alcotest.(check bool) "2x2 feasible" true (Curve.fits c ~w:2.0 ~h:2.0)

let diag_code = function
  | Guard.Diag.Fail d -> Some d.Guard.Diag.code
  | _ -> None

let test_malformed_expression () =
  let leaves = soft_leaves [ 1.0 ] in
  match
    Layout.evaluate
      (Polish.of_elements [| Polish.Operand 5 |])
      ~leaves ~budget
  with
  | exception (Guard.Diag.Fail _ as e) ->
    Alcotest.(check (option string)) "structured code" (Some "bad-leaf-table")
      (diag_code e)
  | _ -> Alcotest.fail "expected missing-leaf diagnostic"

(* The lid -> leaf table validates its input: lids must be exactly
   0..n-1, so a duplicate or out-of-range lid is a structured
   diagnostic, not a silent mis-assignment or a bare invalid_arg. *)
let test_leaf_table_validation () =
  let leaf lid =
    { Layout.lid; curve = Shape.Curve.unconstrained; area_min = 1.0;
      area_target = 1.0 }
  in
  (match Layout.leaf_table [| leaf 0; leaf 1 |] with
  | table ->
    Alcotest.(check int) "slot holds its lid" 1 table.(1).Layout.lid);
  (match Layout.leaf_table [| leaf 0; leaf 0 |] with
  | exception (Guard.Diag.Fail _ as e) ->
    Alcotest.(check (option string)) "duplicate lid" (Some "bad-leaf-table")
      (diag_code e)
  | _ -> Alcotest.fail "duplicate lid accepted");
  (match Layout.leaf_table [| leaf 0; leaf 2 |] with
  | exception (Guard.Diag.Fail _ as e) ->
    Alcotest.(check (option string)) "out-of-range lid" (Some "bad-leaf-table")
      (diag_code e)
  | _ -> Alcotest.fail "out-of-range lid accepted");
  match Layout.leaf_table [||] with
  | table -> Alcotest.(check int) "empty table" 0 (Array.length table)

let layout_deterministic =
  qtest "evaluation is deterministic" QCheck.small_int (fun seed ->
      let rng = Util.Rng.create seed in
      let leaves = soft_leaves [ 1.0; 2.0; 3.0; 1.0 ] in
      let expr = random_expr rng 4 in
      let p1 = Layout.evaluate expr ~leaves ~budget in
      let p2 = Layout.evaluate expr ~leaves ~budget in
      p1.Layout.rects = p2.Layout.rects)

let suite =
  [ ( "slicing.polish",
      [ Alcotest.test_case "initial normalized" `Quick test_initial_normalized;
        Alcotest.test_case "random initial" `Quick test_initial_random_normalized;
        Alcotest.test_case "of_elements validation" `Quick test_of_elements_validation;
        Alcotest.test_case "normalization check" `Quick test_is_normalized_rejects_skew;
        Alcotest.test_case "single operand perturb" `Quick test_perturb_single_operand;
        perturb_preserves_normalization; m1_preserves; m2_preserves; m3_preserves;
        m1_touches_operands_only; m2_touches_operators_only ] );
    ( "slicing.layout",
      [ Alcotest.test_case "fig8 regression" `Quick test_fig8_regression;
        Alcotest.test_case "two-leaf cuts" `Quick test_two_leaf_cuts;
        Alcotest.test_case "macro leaf gets space" `Quick test_macro_leaf_gets_space;
        Alcotest.test_case "infeasible macro" `Quick test_infeasible_macro_reports_deficit;
        Alcotest.test_case "penalty weights" `Quick test_penalty_weights;
        Alcotest.test_case "tree curve" `Quick test_tree_curve;
        Alcotest.test_case "malformed expression" `Quick test_malformed_expression;
        Alcotest.test_case "leaf table validation" `Quick test_leaf_table_validation;
        layout_partitions_budget; layout_deterministic ] ) ]
