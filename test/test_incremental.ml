(* Incremental SA cost evaluation (DESIGN.md section 14).

   The contract under test: [Slicing.Inc] evaluated along any random
   M1/M2/M3 perturbation sequence is bit for bit [Layout.evaluate] on
   the same expression — violations, rectangles and centers; a
   [Layout_gen.run] with [incremental_eval] on is bit-identical to one
   with it off at every job count; the configured start count is
   honored exactly (sa_starts = 1 runs one start); and an asymmetric
   affinity matrix is rejected with a structured diagnostic instead of
   silently dropping weight. *)

module Rect = Geom.Rect
module Point = Geom.Point
module Curve = Shape.Curve
module Polish = Slicing.Polish
module Layout = Slicing.Layout
module Inc = Slicing.Inc
module LG = Hidap.Layout_gen

let qtest ~count name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let beq a b = Int64.bits_of_float a = Int64.bits_of_float b

let beq_viol (a : Layout.violations) (b : Layout.violations) =
  beq a.Layout.at_shift b.Layout.at_shift
  && beq a.Layout.am_deficit b.Layout.am_deficit
  && beq a.Layout.macro_deficit b.Layout.macro_deficit

let beq_rect (a : Rect.t) (b : Rect.t) =
  beq a.Rect.x b.Rect.x && beq a.Rect.y b.Rect.y && beq a.Rect.w b.Rect.w
  && beq a.Rect.h b.Rect.h

let seed_arb = QCheck.int_range 0 1_000_000

(* Random leaves: a mix of unconstrained (soft) and macro-curved blocks,
   with areas that may or may not fit the budget so every violation
   grade shows up in the comparison. *)
let random_leaves rng ~budget n =
  Array.init n (fun lid ->
      let am =
        1.0 +. Util.Rng.float rng (1.5 *. Rect.area budget /. float_of_int n)
      in
      let curve =
        if Util.Rng.bool rng then Curve.unconstrained
        else
          Curve.of_macro
            ~w:(1.0 +. Util.Rng.float rng 6.0)
            ~h:(1.0 +. Util.Rng.float rng 6.0)
            ()
      in
      { Layout.lid; curve; area_min = am;
        area_target = am *. (1.0 +. Util.Rng.float rng 0.5) })

let random_budget rng =
  Rect.make ~x:0.0 ~y:0.0
    ~w:(5.0 +. Util.Rng.float rng 45.0)
    ~h:(5.0 +. Util.Rng.float rng 45.0)

(* One incremental evaluation checked bitwise against the full one. *)
let check_step inc expr ~leaves ~budget =
  let vi = Inc.evaluate inc expr in
  let p = Layout.evaluate expr ~leaves ~budget in
  let rects = Inc.rects inc and cx = Inc.centers_x inc and cy = Inc.centers_y inc in
  beq_viol vi (Inc.violations inc)
  && beq_viol vi p.Layout.viol
  && List.length p.Layout.rects = Array.length leaves
  && List.for_all
       (fun (lid, r) ->
         let c = Rect.center r in
         beq_rect r rects.(lid)
         && beq c.Point.x cx.(lid)
         && beq c.Point.y cy.(lid))
       p.Layout.rects

(* ---- incremental vs full along move sequences ----------------------- *)

let inc_matches_full_random_walk =
  qtest ~count:150 "incremental = full along random M1/M2/M3 walks, bitwise"
    seed_arb (fun seed ->
      let rng = Util.Rng.create seed in
      let n = 2 + Util.Rng.int rng 9 in
      let budget = random_budget rng in
      let leaves = random_leaves rng ~budget n in
      let table = Layout.leaf_table leaves in
      let inc = Inc.create ~table ~budget in
      let expr = ref (Polish.initial_random rng ~n) in
      let ok = ref (check_step inc !expr ~leaves ~budget) in
      for _ = 1 to 12 do
        expr := Polish.perturb rng !expr;
        ok := !ok && check_step inc !expr ~leaves ~budget
      done;
      !ok)

(* Each move kind on its own, so a regression in one diff path cannot
   hide behind the others in the mixed walk above. *)
let inc_matches_full_per_move =
  qtest ~count:100 "incremental = full for each move kind in isolation"
    seed_arb (fun seed ->
      let rng = Util.Rng.create seed in
      let n = 3 + Util.Rng.int rng 8 in
      let budget = random_budget rng in
      let leaves = random_leaves rng ~budget n in
      let table = Layout.leaf_table leaves in
      List.for_all
        (fun move ->
          let inc = Inc.create ~table ~budget in
          let expr = ref (Polish.initial_random rng ~n) in
          let ok = ref (check_step inc !expr ~leaves ~budget) in
          for _ = 1 to 6 do
            (match move rng !expr with Some e -> expr := e | None -> ());
            ok := !ok && check_step inc !expr ~leaves ~budget
          done;
          !ok)
        [ Polish.move_m1; Polish.move_m2; Polish.move_m3 ])

(* The annealer's reject pattern: evaluate A, candidate B, then A again.
   The third evaluation diffs as a reverted window and must still be
   bit-identical to a cold full evaluation of A. *)
let inc_handles_reverts =
  qtest ~count:150 "evaluating A, B, A again stays bit-identical" seed_arb
    (fun seed ->
      let rng = Util.Rng.create seed in
      let n = 2 + Util.Rng.int rng 9 in
      let budget = random_budget rng in
      let leaves = random_leaves rng ~budget n in
      let table = Layout.leaf_table leaves in
      let inc = Inc.create ~table ~budget in
      let a = Polish.initial_random rng ~n in
      let b = Polish.perturb rng a in
      check_step inc a ~leaves ~budget
      && check_step inc b ~leaves ~budget
      && check_step inc a ~leaves ~budget)

(* ---- the flag never changes a placement ----------------------------- *)

let fast_config ~jobs ~incremental =
  { Hidap.Config.default with
    Hidap.Config.jobs;
    incremental_eval = incremental;
    sa_starts = 3;
    layout_sa = { Anneal.Sa.quick_params with Anneal.Sa.max_moves = 600 } }

let random_instance seed =
  let rng = Util.Rng.create seed in
  let n = 2 + Util.Rng.int rng 7 in
  let nf = Util.Rng.int rng 3 in
  let budget = random_budget rng in
  let blocks =
    Array.init n (fun i ->
        let am =
          1.0 +. Util.Rng.float rng (1.5 *. Rect.area budget /. float_of_int n)
        in
        { Hidap.Block.idx = i; ht_id = i; name = Printf.sprintf "b%d" i;
          curve = Curve.unconstrained;
          am;
          at = am *. (1.0 +. Util.Rng.float rng 0.5);
          macro_count = Util.Rng.int rng 3 })
  in
  let total = n + nf in
  let affinity = Array.make_matrix total total 0.0 in
  for i = 0 to total - 1 do
    for j = i + 1 to total - 1 do
      if Util.Rng.bool rng then begin
        let w = 0.1 +. Util.Rng.float rng 2.0 in
        affinity.(i).(j) <- w;
        affinity.(j).(i) <- w
      end
    done
  done;
  let fixed_pos =
    Array.init nf (fun _ ->
        Point.make (Util.Rng.float rng budget.Rect.w)
          (Util.Rng.float rng budget.Rect.h))
  in
  (blocks, affinity, fixed_pos, budget)

let run_one seed ~jobs ~incremental =
  let blocks, affinity, fixed_pos, budget = random_instance seed in
  LG.run
    ~rng:(Util.Rng.create (seed + 7))
    ~config:(fast_config ~jobs ~incremental)
    ~blocks ~affinity ~fixed_pos ~budget ()

let same_result (a : LG.result) (b : LG.result) =
  Array.length a.LG.rects = Array.length b.LG.rects
  && Array.for_all2 beq_rect a.LG.rects b.LG.rects
  && beq a.LG.cost b.LG.cost
  && beq a.LG.wirelength_term b.LG.wirelength_term
  && beq_viol a.LG.viol b.LG.viol
  && a.LG.sa_moves = b.LG.sa_moves

let incremental_flag_is_neutral =
  qtest ~count:8 "incremental_eval never changes the search result" seed_arb
    (fun seed ->
      let base = run_one seed ~jobs:1 ~incremental:false in
      List.for_all
        (fun jobs -> same_result base (run_one seed ~jobs ~incremental:true))
        [ 1; 2; 4 ]
      && same_result base (run_one seed ~jobs:4 ~incremental:false))

(* ---- sa_starts is honored exactly ----------------------------------- *)

(* Every start beyond the first bumps the reheat counter, so the
   counter pins the actual start count: sa_starts = 1 must report zero
   reheats (it used to silently run the reversed chain as a second
   start). *)
let test_sa_starts_honored () =
  List.iter
    (fun n_starts ->
      let blocks, affinity, fixed_pos, budget = random_instance 42 in
      let config =
        { (fast_config ~jobs:1 ~incremental:true) with
          Hidap.Config.sa_starts = n_starts }
      in
      let reg = Obs.Perf.create () in
      Obs.Perf.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Obs.Perf.set_enabled false)
        (fun () ->
          Obs.Perf.with_ambient reg (fun () ->
              ignore
                (LG.run ~rng:(Util.Rng.create 1) ~config ~blocks ~affinity
                   ~fixed_pos ~budget ())));
      Alcotest.(check int)
        (Printf.sprintf "sa_starts = %d runs exactly %d starts" n_starts n_starts)
        (n_starts - 1)
        (Obs.Perf.get reg Obs.Perf.sa_reheats))
    [ 1; 2; 4 ]

(* ---- asymmetric affinity is rejected -------------------------------- *)

let diag_code = function Guard.Diag.Fail d -> Some d.Guard.Diag.code | _ -> None

let test_asymmetric_affinity_rejected () =
  let blocks, affinity, fixed_pos, budget = random_instance 7 in
  affinity.(0).(1) <- 1.0;
  affinity.(1).(0) <- 2.0;
  (match
     LG.eval_expr ~config:Hidap.Config.default ~blocks ~affinity ~fixed_pos
       ~budget
       (Polish.initial ~n:(Array.length blocks))
   with
  | exception (Guard.Diag.Fail _ as e) ->
    Alcotest.(check (option string))
      "asymmetric matrix fails with asymmetric-affinity"
      (Some "asymmetric-affinity") (diag_code e)
  | _ -> Alcotest.fail "asymmetric affinity was accepted");
  affinity.(1).(0) <- Float.nan;
  match
    LG.eval_expr ~config:Hidap.Config.default ~blocks ~affinity ~fixed_pos
      ~budget
      (Polish.initial ~n:(Array.length blocks))
  with
  | exception (Guard.Diag.Fail _ as e) ->
    Alcotest.(check (option string)) "NaN weight fails with asymmetric-affinity"
      (Some "asymmetric-affinity") (diag_code e)
  | _ -> Alcotest.fail "NaN affinity weight was accepted"

let suite =
  [ ( "incremental",
      [ inc_matches_full_random_walk; inc_matches_full_per_move;
        inc_handles_reverts; incremental_flag_is_neutral;
        Alcotest.test_case "sa_starts honored exactly" `Quick
          test_sa_starts_honored;
        Alcotest.test_case "asymmetric affinity rejected" `Quick
          test_asymmetric_affinity_rejected ] ) ]
